package core

import (
	"sort"
	"sync"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
)

// Matcher holds the NFA view of a program's ICFG (Definition 4.1: states
// are instruction nodes, the alphabet is bytecode instructions with branch
// directions, any state can start or accept) together with the control
// skeleton used as the abstract NFA (Definitions 4.2/4.3) and the indexes
// that make reconstruction fast.
type Matcher struct {
	G *cfg.ICFG

	// opIndex[op] lists nodes whose instruction is op (candidate starting
	// states for a trace beginning with op).
	opIndex [][]cfg.NodeID
	// handlerTargets are all exception-handler entries; cross-method
	// unwinding, which the context-insensitive ICFG does not represent,
	// falls back to them.
	handlerTargets []cfg.NodeID
	// entryNodes are all method entries; unresolved dynamic calls fall
	// back to them (the paper's callback search, §4 Discussions).
	entryNodes []cfg.NodeID
	// returnSites are the instructions following any call site; returns
	// from callees the static ICFG did not wire (unresolved dynamic
	// callers) fall back to them.
	returnSites []cfg.NodeID

	// ctrlReach holds, per node, the set of control nodes reachable
	// through non-control instructions only (the ε-closure of the ANFA,
	// Fig 5). It is precomputed for every node at construction time so the
	// matcher is strictly read-only afterwards — safe for any number of
	// concurrent readers with no locking on the hot path.
	ctrlReach [][]cfg.NodeID

	// MaxStates caps subset-simulation layers (deterministic pruning).
	MaxStates int
	// UseContext selects the PDA engine (MatchFromContext) for segment
	// reconstruction instead of the paper's NFA (an evaluated extension;
	// see pda.go).
	UseContext bool

	// scratch recycles MatchScratch values for callers that use the
	// scratch-free entry points (MatchFrom, ReconstructSegment).
	scratch sync.Pool
}

// NewMatcher builds the matcher for g.
func NewMatcher(g *cfg.ICFG) *Matcher {
	m := &Matcher{
		G:         g,
		opIndex:   make([][]cfg.NodeID, bytecode.NumOpcodes),
		MaxStates: 4096,
	}
	for _, meth := range g.Prog.Methods {
		for pc := range meth.Code {
			n := g.Node(meth.ID, int32(pc))
			op := meth.Code[pc].Op
			m.opIndex[op] = append(m.opIndex[op], n)
			if op.IsCall() && pc+1 < len(meth.Code) {
				m.returnSites = append(m.returnSites, g.Node(meth.ID, int32(pc+1)))
			}
		}
		for _, h := range meth.Handlers {
			m.handlerTargets = append(m.handlerTargets, g.Node(meth.ID, h.Target))
		}
	}
	m.entryNodes = g.MethodEntries()
	m.precomputeCtrlReach()
	return m
}

// precomputeCtrlReach computes the ANFA ε-closure of every node eagerly.
// The previous implementation memoised closures lazily in a map, which was
// a data race once segments reconstruct concurrently; eager computation
// removes both the race and any need for a lock on the query path.
func (m *Matcher) precomputeCtrlReach() {
	n := m.G.NumNodes()
	m.ctrlReach = make([][]cfg.NodeID, n)
	seen := make([]int32, n) // generation marks: seen[x] == gen means visited
	gen := int32(0)
	var stack, out []cfg.NodeID
	for v := 0; v < n; v++ {
		gen++
		out = out[:0]
		stack = append(stack[:0], cfg.NodeID(v))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] == gen {
				continue
			}
			seen[x] = gen
			if m.G.Instr(x).Op.IsControl() {
				out = append(out, x)
				continue
			}
			for _, e := range m.G.Succs[x] {
				if seen[e.To] != gen {
					stack = append(stack, e.To)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		m.ctrlReach[v] = append([]cfg.NodeID(nil), out...)
	}
}

// NodesWithOp returns candidate starting states for a trace beginning with
// op.
func (m *Matcher) NodesWithOp(op bytecode.Opcode) []cfg.NodeID { return m.opIndex[op] }

// tokenMatchesNode implements the symbol match I(N(o)) = s of
// Definition 4.1: located tokens must be at exactly their node; interpreter
// tokens match any node with the same opcode.
func (m *Matcher) tokenMatchesNode(t *Token, n cfg.NodeID) bool {
	if t.Located() {
		mid, pc := m.G.Location(n)
		return mid == t.Method && pc == t.PC
	}
	return m.G.Instr(n).Op == t.Op
}

// successors returns the NFA transition targets from node n given that the
// token consumed at n was t (the token's branch direction selects among a
// conditional's out-edges). The boolean reports whether a fallback
// (handler targets or method entries) was used. The result always aliases
// buf's backing array (fallback sets are copied in), so callers may retain
// the returned slice as their reusable scratch buffer.
func (m *Matcher) successors(n cfg.NodeID, t *Token, buf []cfg.NodeID) ([]cfg.NodeID, bool) {
	ins := m.G.Instr(n)
	edges := m.G.Succs[n]
	switch {
	case ins.Op.IsCondBranch():
		for _, e := range edges {
			if !t.HasDir {
				if e.Kind == cfg.EdgeTaken || e.Kind == cfg.EdgeFallthrough {
					buf = append(buf, e.To)
				}
				continue
			}
			if t.Taken && e.Kind == cfg.EdgeTaken || !t.Taken && e.Kind == cfg.EdgeFallthrough {
				buf = append(buf, e.To)
			}
		}
	case ins.Op == bytecode.GOTO:
		for _, e := range edges {
			if e.Kind == cfg.EdgeJump {
				buf = append(buf, e.To)
			}
		}
	case ins.Op == bytecode.TABLESWITCH:
		for _, e := range edges {
			if e.Kind == cfg.EdgeSwitch {
				buf = append(buf, e.To)
			}
		}
	case ins.Op.IsCall():
		for _, e := range edges {
			if e.Kind == cfg.EdgeCall {
				buf = append(buf, e.To)
			}
		}
		if len(buf) == 0 {
			// The statically built ICFG misses this call's targets
			// (dynamic dispatch/reflection): inspect all potential
			// entry points (§4, Discussions).
			return append(buf, m.entryNodes...), true
		}
	case ins.Op.IsReturn():
		for _, e := range edges {
			if e.Kind == cfg.EdgeReturn {
				buf = append(buf, e.To)
			}
		}
		if len(buf) == 0 {
			// No statically known caller (the method is only reachable
			// through unresolved dynamic dispatch): any return site.
			return append(buf, m.returnSites...), true
		}
	case ins.Op == bytecode.ATHROW:
		for _, e := range edges {
			if e.Kind == cfg.EdgeThrow {
				buf = append(buf, e.To)
			}
		}
		if len(buf) == 0 {
			return append(buf, m.handlerTargets...), true
		}
	default:
		for _, e := range edges {
			if e.Kind == cfg.EdgeFallthrough {
				buf = append(buf, e.To)
			}
		}
		// A may-throw instruction can also transfer to a handler.
		if ins.Op.MayThrow() {
			for _, e := range edges {
				if e.Kind == cfg.EdgeThrow {
					buf = append(buf, e.To)
				}
			}
			if len(edges) == 0 || onlyThrowless(edges) {
				// Uncaught in this method: cross-method unwind.
				buf = append(buf, m.handlerTargets...)
				return buf, true
			}
		}
	}
	return buf, false
}

func onlyThrowless(edges []cfg.Edge) bool {
	for _, e := range edges {
		if e.Kind == cfg.EdgeThrow {
			return false
		}
	}
	return true
}

// CtrlReach returns the ANFA ε-closure of n: the control nodes reachable
// from n through zero or more non-control instructions (n itself if it is a
// control node). The closure is precomputed at construction; the returned
// slice is shared and must not be mutated.
func (m *Matcher) CtrlReach(n cfg.NodeID) []cfg.NodeID {
	return m.ctrlReach[n]
}

// MatchScratch holds the per-call working state of the subset simulation:
// the dedup marks, the successor buffer and the layer backing store. One
// scratch serves one goroutine at a time; a worker reuses its scratch
// across calls so the hot path stops allocating per token layer. Obtain one
// with Matcher.NewScratch and pass it to the *Scratch entry points.
type MatchScratch struct {
	// seen is a generation-marked dense set over NodeIDs: seen[n] == gen
	// means n is a member. Bumping gen clears the set in O(1).
	seen []int32
	gen  int32
	// buf is the successor scratch buffer.
	buf []cfg.NodeID
	// layers recycles the per-token state layers of MatchFrom.
	layers [][]layerEntry
	// states/next recycle the abstract-state slices of IsAcceptedAbstract.
	states, next []cfg.NodeID
	// pathBuf recycles the witness-path slice MatchFromScratch returns
	// (aliased by MatchResult.Path; see that method's contract).
	pathBuf []cfg.NodeID
	// poolable marks scratch owned by the matcher's pool: set while the
	// scratch is checked out via getScratch, cleared by putScratch
	// before the Put so a second Put of the same scratch is a no-op.
	// Scratch from NewScratch is caller-owned and never poolable.
	poolable bool
}

// NewScratch allocates a scratch sized for this matcher's ICFG.
func (m *Matcher) NewScratch() *MatchScratch {
	return &MatchScratch{seen: make([]int32, m.G.NumNodes())}
}

// reset starts a fresh membership generation.
func (sc *MatchScratch) reset() {
	sc.gen++
	if sc.gen == 0 { // wrapped: clear marks once every 2^31 generations
		for i := range sc.seen {
			sc.seen[i] = 0
		}
		sc.gen = 1
	}
}

func (sc *MatchScratch) mark(n cfg.NodeID) { sc.seen[n] = sc.gen }
func (sc *MatchScratch) has(n cfg.NodeID) bool {
	return sc.seen[n] == sc.gen
}

// layer returns the recycled backing slice for layer i, emptied.
func (sc *MatchScratch) layer(i int) []layerEntry {
	for len(sc.layers) <= i {
		sc.layers = append(sc.layers, nil)
	}
	return sc.layers[i][:0]
}

func (m *Matcher) getScratch() *MatchScratch {
	var sc *MatchScratch
	if v := m.scratch.Get(); v != nil {
		sc = v.(*MatchScratch)
	} else {
		sc = m.NewScratch()
	}
	sc.poolable = true
	return sc
}

// putScratch returns a pool-owned scratch to the pool. Caller-owned
// scratch (from NewScratch) and scratch already returned are ignored:
// the poolable flag is cleared before the Put, so no scratch can enter
// the pool twice — a double Put would hand the same scratch to two
// goroutines at once.
func (m *Matcher) putScratch(sc *MatchScratch) {
	if sc == nil || !sc.poolable {
		return
	}
	sc.poolable = false
	m.scratch.Put(sc)
}

// AbstractTokens returns the tier-2 (control-structure) abstraction of toks
// (Definition 4.2).
func AbstractTokens(toks []Token) []Token {
	var out []Token
	for i := range toks {
		if toks[i].Op.IsControl() {
			out = append(out, toks[i])
		}
	}
	return out
}

// IsAcceptedAbstract checks whether the abstract token sequence can be
// matched by the ANFA starting from concrete node start (Theorem 4.4's
// necessary condition). atoks must already be abstracted.
func (m *Matcher) IsAcceptedAbstract(start cfg.NodeID, atoks []Token) bool {
	sc := m.getScratch()
	defer m.putScratch(sc)
	return m.IsAcceptedAbstractScratch(sc, start, atoks)
}

// IsAcceptedAbstractScratch is IsAcceptedAbstract using caller-provided
// scratch buffers (one scratch per goroutine).
func (m *Matcher) IsAcceptedAbstractScratch(sc *MatchScratch, start cfg.NodeID, atoks []Token) bool {
	if len(atoks) == 0 {
		return true
	}
	// ε-close the start, filter by the first abstract symbol.
	states := sc.states[:0]
	for _, c := range m.CtrlReach(start) {
		if m.tokenMatchesNode(&atoks[0], c) {
			states = append(states, c)
		}
	}
	next := sc.next[:0]
	for i := 0; i+1 < len(atoks); i++ {
		next = next[:0]
		sc.reset()
		for _, s := range states {
			succs, _ := m.successors(s, &atoks[i], sc.buf[:0])
			sc.buf = succs
			for _, scc := range succs {
				for _, c := range m.CtrlReach(scc) {
					if !sc.has(c) && m.tokenMatchesNode(&atoks[i+1], c) {
						sc.mark(c)
						next = append(next, c)
					}
				}
			}
		}
		if len(next) == 0 {
			sc.states, sc.next = states, next
			return false
		}
		if len(next) > m.MaxStates {
			next = next[:m.MaxStates]
		}
		states, next = next, states
	}
	ok := len(states) > 0
	sc.states, sc.next = states, next
	return ok
}

// MatchResult is the outcome of projecting a token run onto the ICFG.
type MatchResult struct {
	// Path holds one node per matched token.
	Path []cfg.NodeID
	// Matched is the number of tokens consumed (len(Path)).
	Matched int
	// Complete reports whether every token matched.
	Complete bool
	// Reanchors counts located-token re-anchorings (debug-info gaps the
	// matcher stepped over).
	Reanchors int
	// Fallbacks counts uses of the entry/handler fallbacks.
	Fallbacks int
}

// layerEntry is one NFA state with its predecessor for path recovery.
type layerEntry struct {
	node   cfg.NodeID
	parent int32 // index into previous layer, -1 at the start
}

// MatchFrom runs the NFA subset simulation over toks beginning from the
// given start states, returning the longest matched prefix and one witness
// path (the disambiguated projection). It is the engine beneath both
// Algorithm 1 and Algorithm 2 and the production pipeline.
func (m *Matcher) MatchFrom(starts []cfg.NodeID, toks []Token) MatchResult {
	sc := m.getScratch()
	defer m.putScratch(sc)
	r := m.MatchFromScratch(sc, starts, toks)
	// The scratch goes back to the pool here, so detach the witness path
	// from its recycled buffer.
	if r.Path != nil {
		r.Path = append([]cfg.NodeID(nil), r.Path...)
	}
	return r
}

// MatchFromScratch is MatchFrom using caller-provided scratch buffers. The
// matcher itself is read-only, so any number of goroutines may match
// concurrently as long as each brings its own scratch. The returned
// MatchResult.Path aliases the scratch's recycled path buffer: it is
// valid until the next MatchFromScratch call with the same scratch, so
// copy it out (as ReconstructSegmentScratch does) before matching again.
func (m *Matcher) MatchFromScratch(sc *MatchScratch, starts []cfg.NodeID, toks []Token) MatchResult {
	if len(toks) == 0 {
		return MatchResult{Complete: true}
	}
	var res MatchResult
	layer := sc.layer(0)
	for _, s := range starts {
		if m.tokenMatchesNode(&toks[0], s) {
			layer = append(layer, layerEntry{node: s, parent: -1})
		}
		if len(layer) >= m.MaxStates {
			break
		}
	}
	sc.layers[0] = layer
	if len(layer) == 0 {
		return res
	}
	nLayers := 1

	for i := 0; i+1 < len(toks); i++ {
		cur := sc.layers[i]
		next := sc.layer(i + 1)
		sc.reset()
		tok := &toks[i]
		ntok := &toks[i+1]
		for pi := range cur {
			succs, fb := m.successors(cur[pi].node, tok, sc.buf[:0])
			sc.buf = succs
			if fb {
				res.Fallbacks++
			}
			for _, s := range succs {
				if !sc.has(s) && m.tokenMatchesNode(ntok, s) {
					sc.mark(s)
					next = append(next, layerEntry{node: s, parent: int32(pi)})
					if len(next) >= m.MaxStates {
						break
					}
				}
			}
			if len(next) >= m.MaxStates {
				break
			}
		}
		if len(next) == 0 {
			if ntok.Located() {
				// Debug-info imprecision (elided instructions,
				// approximate records) broke the chain; re-anchor at
				// the known location rather than splitting the run.
				res.Reanchors++
				next = append(next, layerEntry{
					node:   m.G.Node(ntok.Method, ntok.PC),
					parent: int32(minParent(cur)),
				})
			} else {
				sc.layers[i+1] = next
				break
			}
		}
		sc.layers[i+1] = next
		nLayers++
	}

	layers := sc.layers[:nLayers]

	// Walk back from the lexicographically smallest final state.
	final := layers[len(layers)-1]
	best := 0
	for i := 1; i < len(final); i++ {
		if final[i].node < final[best].node {
			best = i
		}
	}
	if cap(sc.pathBuf) < len(layers) {
		sc.pathBuf = make([]cfg.NodeID, len(layers)*2)
	}
	path := sc.pathBuf[:len(layers)]
	idx := int32(best)
	for li := len(layers) - 1; li >= 0; li-- {
		e := layers[li][idx]
		path[li] = e.node
		idx = e.parent
		if idx < 0 && li > 0 {
			// Re-anchor boundary: earlier layers keep their smallest
			// state as the witness.
			for lj := li - 1; lj >= 0; lj-- {
				path[lj] = layers[lj][smallest(layers[lj])].node
			}
			break
		}
	}
	res.Path = path
	res.Matched = len(layers)
	res.Complete = res.Matched == len(toks)
	return res
}

func smallest(l []layerEntry) int {
	b := 0
	for i := 1; i < len(l); i++ {
		if l[i].node < l[b].node {
			b = i
		}
	}
	return b
}

func minParent(cur []layerEntry) int {
	if len(cur) == 0 {
		return -1
	}
	return -1
}

// EnumerateAndTest is Algorithm 1: try every node of the ICFG as the start
// state and return the first whose NFA accepts the whole sequence. It is
// the quadratic baseline the abstraction-guided algorithm improves on; kept
// for the ablation benchmarks.
func (m *Matcher) EnumerateAndTest(toks []Token) (MatchResult, bool) {
	for n := cfg.NodeID(0); int(n) < m.G.NumNodes(); n++ {
		r := m.MatchFrom([]cfg.NodeID{n}, toks)
		if r.Complete {
			return r, true
		}
	}
	return MatchResult{}, false
}

// AbstractionGuided is Algorithm 2: for each candidate start (indexed by
// the first symbol), first test the abstract sequence against the ANFA/DFA
// and only on abstract acceptance run the concrete match.
func (m *Matcher) AbstractionGuided(toks []Token) (MatchResult, bool) {
	if len(toks) == 0 {
		return MatchResult{Complete: true}, true
	}
	atoks := AbstractTokens(toks)
	for _, n := range m.candidateStarts(&toks[0]) {
		if !m.IsAcceptedAbstract(n, atoks) {
			continue
		}
		r := m.MatchFrom([]cfg.NodeID{n}, toks)
		if r.Complete {
			return r, true
		}
	}
	return MatchResult{}, false
}

func (m *Matcher) candidateStarts(t *Token) []cfg.NodeID {
	if t.Located() {
		return []cfg.NodeID{m.G.Node(t.Method, t.PC)}
	}
	return m.opIndex[t.Op]
}
