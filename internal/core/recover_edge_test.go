package core

// Edge cases of §5 recovery under degraded input: holes at the thread
// boundary, holes bigger than any donor material, consecutive holes, and
// recovery when every candidate segment has been quarantined. These are the
// shapes a chaos run produces; none may panic and none may splice
// quarantined tokens into the profile.

import (
	"testing"
)

// TestRecoverHoleAtThreadStart: the first flow carries a GapBefore (the
// thread was created before tracing caught up). That gap has no preceding
// segment, so it is never an indexable hole — but the recoverer built over
// such flows must still index them and fill the interior holes normally.
func TestRecoverHoleAtThreadStart(t *testing.T) {
	_, m := fig2Matcher(t)
	iter := len(fig2ElseTrace())
	head := mkFlow(m, repTrace(3, 1000), &GapInfo{Start: 0, End: 1000, LostBytes: 50})
	gapDur := uint64(4 * iter * 10)
	tail := mkFlow(m, repTrace(3, 1000+uint64(3*iter*10)+gapDur), &GapInfo{
		Start: 1000 + uint64(3*iter*10), End: 1000 + uint64(3*iter*10) + gapDur, LostBytes: 200,
	})
	cs := mkFlow(m, repTrace(10, 100_000), &GapInfo{Desync: true})
	r := NewRecoverer(m, []*SegmentFlow{head, tail, cs}, DefaultRecoveryConfig())
	fill := r.RecoverHole(0)
	if fill.Method == FillNone {
		t.Fatalf("interior hole after a leading gap not filled (tried %d)", fill.CandidatesTried)
	}
}

// TestRecoverHoleSpanningEntireSegmentBudget: the gap's implied execution
// dwarfs all donor material. The fill must stay bounded by MaxFillTokens
// and return (partial splice or walk), not spin or panic.
func TestRecoverHoleSpanningEntireSegmentBudget(t *testing.T) {
	_, m := fig2Matcher(t)
	iter := len(fig2ElseTrace())
	pre := mkFlow(m, repTrace(2, 0), nil)
	// A gap claiming ~10000 iterations of lost execution.
	gapDur := uint64(10_000 * iter * 10)
	post := mkFlow(m, repTrace(2, uint64(2*iter*10)+gapDur), &GapInfo{
		Start: uint64(2 * iter * 10), End: uint64(2*iter*10) + gapDur, LostBytes: 1 << 20,
	})
	cs := mkFlow(m, repTrace(4, 100_000), &GapInfo{Desync: true})
	cfg := DefaultRecoveryConfig()
	r := NewRecoverer(m, []*SegmentFlow{pre, post, cs}, cfg)
	fill := r.RecoverHole(0)
	if len(fill.Steps) > cfg.MaxFillTokens {
		t.Fatalf("fill of %d steps exceeds MaxFillTokens %d", len(fill.Steps), cfg.MaxFillTokens)
	}
}

// TestRecoverBackToBackHoles: every interior boundary is a hole. Each hole
// is recovered independently; both must return without interfering.
func TestRecoverBackToBackHoles(t *testing.T) {
	_, m := fig2Matcher(t)
	iter := len(fig2ElseTrace())
	gapDur := uint64(2 * iter * 10)
	t0 := uint64(3 * iter * 10)
	a := mkFlow(m, repTrace(3, 0), nil)
	b := mkFlow(m, repTrace(3, t0+gapDur), &GapInfo{Start: t0, End: t0 + gapDur, LostBytes: 100})
	t1 := t0 + gapDur + uint64(3*iter*10)
	c := mkFlow(m, repTrace(3, t1+gapDur), &GapInfo{Start: t1, End: t1 + gapDur, LostBytes: 100})
	cs := mkFlow(m, repTrace(10, 1_000_000), &GapInfo{Desync: true})
	r := NewRecoverer(m, []*SegmentFlow{a, b, c, cs}, DefaultRecoveryConfig())
	f0 := r.RecoverHole(0)
	f1 := r.RecoverHole(1)
	if f0.Method == FillNone || f1.Method == FillNone {
		t.Fatalf("back-to-back holes: fill0=%v fill1=%v", f0.Method, f1.Method)
	}
}

// TestRecoverAllCandidatesQuarantined: a quarantined flow must behave
// exactly as if it were absent — it contributes no anchor candidates, so
// recovery with the quarantined donor present equals recovery without it.
func TestRecoverAllCandidatesQuarantined(t *testing.T) {
	_, m := fig2Matcher(t)
	iter := len(fig2ElseTrace())
	pre := mkFlow(m, repTrace(3, 0), nil)
	gapDur := uint64(4 * iter * 10)
	post := mkFlow(m, repTrace(3, uint64(3*iter*10)+gapDur), &GapInfo{
		Start: uint64(3 * iter * 10), End: uint64(3*iter*10) + gapDur, LostBytes: 300,
	})
	qseg := &Segment{Tokens: repTrace(12, 100_000), GapBefore: &GapInfo{Desync: true}}
	q := quarantinedFlow(qseg, m.G)

	withQ := NewRecoverer(m, []*SegmentFlow{pre, post, q}, DefaultRecoveryConfig()).RecoverHole(0)
	without := NewRecoverer(m, []*SegmentFlow{pre, post}, DefaultRecoveryConfig()).RecoverHole(0)
	if withQ.Method != without.Method || len(withQ.Steps) != len(without.Steps) {
		t.Fatalf("quarantined donor changed the fill: %v/%d steps vs %v/%d",
			withQ.Method, len(withQ.Steps), without.Method, len(without.Steps))
	}
	for _, s := range withQ.Steps {
		if !s.Recovered {
			t.Fatal("fill step not marked Recovered")
		}
	}

	// A hole whose post-segment is itself quarantined: no confirmation
	// tokens exist, so a splice can never be confirmed, and indexing the
	// quarantined flow as IS must return no candidates.
	r2 := NewRecoverer(m, []*SegmentFlow{pre, q}, DefaultRecoveryConfig())
	if fill := r2.RecoverHole(0); fill.Method == FillCS {
		t.Fatalf("splice fill %v confirmed against quarantined post tokens", fill.Method)
	}
	if cands, _, _ := r2.searchCS(1); cands != nil {
		t.Fatal("searchCS over a quarantined IS returned candidates")
	}
}

// TestRecoverNilFlowSlots: crash containment can leave nil flows; every
// recovery entry point must treat them as absent.
func TestRecoverNilFlowSlots(t *testing.T) {
	_, m := fig2Matcher(t)
	pre := mkFlow(m, repTrace(2, 0), nil)
	post := mkFlow(m, repTrace(2, 1000), &GapInfo{Start: 500, End: 1000, LostBytes: 100})
	r := NewRecoverer(m, []*SegmentFlow{pre, nil, post}, DefaultRecoveryConfig())
	if fill := r.RecoverHole(0); fill.Method != FillNone {
		t.Fatalf("hole into a nil flow filled: %v", fill.Method)
	}
	if fill := r.RecoverHole(1); fill.Method != FillNone {
		t.Fatalf("hole out of a nil flow filled: %v", fill.Method)
	}
}
