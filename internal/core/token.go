// Package core implements JPortal's offline analysis — the paper's primary
// contribution: decoding hardware traces into bytecode instruction
// sequences (§3), projecting those sequences onto the program's ICFG by
// NFA-based matching with abstraction-guided search (§4, Definitions
// 4.1-4.3, Algorithms 1-2), and recovering the holes that data loss leaves
// between trace segments with the three-tier abstraction hierarchy and
// pruned candidate search (§5, Definitions 5.1-5.2, Lemmas 5.3-5.4,
// Theorem 5.5, Algorithms 3-4).
package core

import (
	"fmt"

	"jportal/internal/bytecode"
)

// Token is one bytecode-level trace event produced by decoding. Tokens from
// interpreted execution carry only the opcode (plus the branch direction
// for conditionals) — *which* program instruction executed is exactly what
// reconstruction must determine. Tokens decoded from JITed code carry their
// precise location from the debug metadata.
type Token struct {
	Op bytecode.Opcode
	// HasDir/Taken give the conditional-branch outcome.
	HasDir bool
	Taken  bool
	// Method/PC locate the instruction when known (JIT debug info);
	// Method is bytecode.NoMethod for interpreter tokens.
	Method bytecode.MethodID
	PC     int32
	// TSC is the best-effort timestamp.
	TSC uint64
	// Approx marks tokens from approximate debug records.
	Approx bool
}

// Located reports whether the token carries a precise location.
func (t *Token) Located() bool { return t.Method != bytecode.NoMethod }

// Tier reports the highest abstraction tier the token survives:
// 1 for call-structure tokens, 2 for other control tokens, 3 otherwise
// (Definition 5.2: tier-l abstraction keeps tokens with Tier() <= l).
func (t *Token) Tier() int {
	switch {
	case t.Op.IsCallStructure():
		return 1
	case t.Op.IsControl():
		return 2
	}
	return 3
}

// MatchKey is a comparable summary used by recovery matching: located
// tokens compare by position, interpreter tokens by opcode and direction.
func (t *Token) MatchKey() uint64 {
	if t.Located() {
		return 1<<63 | uint64(uint32(t.Method))<<24 | uint64(uint32(t.PC))&0xffffff
	}
	k := uint64(t.Op)
	if t.HasDir {
		k |= 1 << 9
		if t.Taken {
			k |= 1 << 10
		}
	}
	return k
}

func (t Token) String() string {
	dir := ""
	if t.HasDir {
		if t.Taken {
			dir = " 1"
		} else {
			dir = " 0"
		}
	}
	if t.Located() {
		return fmt.Sprintf("m%d@%d:%s%s", t.Method, t.PC, t.Op, dir)
	}
	return fmt.Sprintf("%s%s", t.Op, dir)
}

// GapInfo describes the discontinuity preceding a segment.
type GapInfo struct {
	// LostBytes is the dropped trace volume (0 for pure desyncs).
	LostBytes uint64
	// Start and End bound the loss episode in time.
	Start, End uint64
	// Desync marks decoder desynchronisation rather than buffer loss.
	Desync bool
}

// Duration returns the loss episode length in cycles.
func (g *GapInfo) Duration() uint64 {
	if g.End > g.Start {
		return g.End - g.Start
	}
	return 0
}

// Segment is a maximal run of decoded tokens with no internal data loss
// (the paper's ω, §4). GapBefore is nil only for a thread's first segment.
type Segment struct {
	Tokens    []Token
	GapBefore *GapInfo

	// abs1/abs2 are the tier-1/tier-2 abstractions: indices into Tokens
	// of the surviving tokens (computed lazily; see Abstraction).
	abs1, abs2 []int32
	// absIdx1/absIdx2 give, for every concrete index, how many
	// tier-1/tier-2 tokens occur strictly before it (prefix counts used
	// by suffix comparisons at higher tiers).
	absIdx1, absIdx2 []int32
}

// Abstraction returns the indices of tokens surviving tier-l abstraction
// (Definition 5.2), computing and caching them on first use.
func (s *Segment) Abstraction(l int) []int32 {
	s.ensureAbs()
	switch l {
	case 1:
		return s.abs1
	case 2:
		return s.abs2
	}
	panic("core: Abstraction tier must be 1 or 2")
}

// AbsPrefix returns, for concrete index i, the number of tier-l tokens at
// indices < i.
func (s *Segment) AbsPrefix(l int, i int) int32 {
	s.ensureAbs()
	switch l {
	case 1:
		return s.absIdx1[i]
	case 2:
		return s.absIdx2[i]
	}
	panic("core: AbsPrefix tier must be 1 or 2")
}

func (s *Segment) ensureAbs() {
	if s.absIdx1 != nil {
		return
	}
	n := len(s.Tokens)
	s.absIdx1 = make([]int32, n+1)
	s.absIdx2 = make([]int32, n+1)
	for i := range s.Tokens {
		s.absIdx1[i] = int32(len(s.abs1))
		s.absIdx2[i] = int32(len(s.abs2))
		switch s.Tokens[i].Tier() {
		case 1:
			s.abs1 = append(s.abs1, int32(i))
			s.abs2 = append(s.abs2, int32(i))
		case 2:
			s.abs2 = append(s.abs2, int32(i))
		}
	}
	s.absIdx1[n] = int32(len(s.abs1))
	s.absIdx2[n] = int32(len(s.abs2))
}
