package core

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
	"jportal/internal/meta"
	"jportal/internal/ptdecode"
)

func mkEvents() ([]ptdecode.Event, *bytecode.Program, *meta.CompiledMethod) {
	prog := bytecode.MustAssemble(fig2Src)
	fun := prog.MethodByName("Test.fun")
	// A small fake blob covering fun's first three instructions, with the
	// middle one carrying an inline frame.
	a := isa.NewAssembler("b", meta.CodeCacheBase)
	a.Emit(isa.Linear, 4, 0, "")
	a.Emit(isa.Linear, 4, 0, "")
	a.Emit(isa.Linear, 4, 0, "")
	blob := a.Finish()
	cm := &meta.CompiledMethod{
		Root: fun.ID, Tier: 2, Code: blob,
		Debug: []meta.DebugRecord{
			{Addr: blob.Instrs[0].Addr, Frames: []meta.Frame{{Method: fun.ID, PC: 0}}},
			{Addr: blob.Instrs[1].Addr, Frames: []meta.Frame{{Method: fun.ID, PC: 0}}}, // same bci: collapses
			{Addr: blob.Instrs[2].Addr, Frames: []meta.Frame{{Method: fun.ID, PC: 1}}, Approximate: true},
		},
	}
	events := []ptdecode.Event{
		{Kind: ptdecode.EvTime, TSC: 100},
		{Kind: ptdecode.EvTemplate, Op: bytecode.ILOAD},
		{Kind: ptdecode.EvTemplate, Op: bytecode.IFEQ},
		{Kind: ptdecode.EvTemplateTNT, Op: bytecode.IFEQ, Taken: true},
		{Kind: ptdecode.EvGap, LostBytes: 64, GapStart: 150, GapEnd: 400},
		{Kind: ptdecode.EvJITRange, Blob: cm, First: 0, Last: 3},
		{Kind: ptdecode.EvDesync},
		{Kind: ptdecode.EvTemplate, Op: bytecode.IRETURN},
	}
	return events, prog, cm
}

func TestTokenizeEvents(t *testing.T) {
	events, prog, _ := mkEvents()
	segs, st := TokenizeEvents(prog, events)
	if len(segs) != 3 {
		t.Fatalf("segments: %d", len(segs))
	}
	// Segment 0: iload, ifeq(taken).
	s0 := segs[0].Tokens
	if len(s0) != 2 || s0[0].Op != bytecode.ILOAD || !s0[1].HasDir || !s0[1].Taken {
		t.Errorf("seg0: %v", s0)
	}
	if s0[0].TSC != 100 {
		t.Errorf("seg0 tsc: %d", s0[0].TSC)
	}
	// Segment 1: the JIT range collapsed to 2 located tokens; gap before.
	s1 := segs[1]
	if s1.GapBefore == nil || s1.GapBefore.LostBytes != 64 || s1.GapBefore.Desync {
		t.Fatalf("seg1 gap: %+v", s1.GapBefore)
	}
	if len(s1.Tokens) != 2 {
		t.Fatalf("seg1 tokens: %v", s1.Tokens)
	}
	if !s1.Tokens[0].Located() || s1.Tokens[0].PC != 0 || s1.Tokens[1].PC != 1 {
		t.Errorf("seg1 locations: %v", s1.Tokens)
	}
	if s1.Tokens[0].Op != bytecode.ILOAD {
		t.Errorf("located token op not enriched: %v", s1.Tokens[0].Op)
	}
	if !s1.Tokens[1].Approx {
		t.Error("approximate flag lost")
	}
	// Segment 2 follows the desync.
	if segs[2].GapBefore == nil || !segs[2].GapBefore.Desync {
		t.Errorf("seg2 gap: %+v", segs[2].GapBefore)
	}
	if st.Segments != 3 || st.Gaps != 1 || st.LostBytes != 64 {
		t.Errorf("stats: %+v", st)
	}
	if st.LocatedTokens != 2 {
		t.Errorf("located tokens: %d", st.LocatedTokens)
	}
}

func TestTokenizeSynthesisesOrphanTNT(t *testing.T) {
	prog := bytecode.MustAssemble(fig2Src)
	events := []ptdecode.Event{
		// A TNT whose dispatch was lost (post-gap FUP anchor): the branch
		// token is synthesised.
		{Kind: ptdecode.EvTemplateTNT, Op: bytecode.IFNE, Taken: false},
	}
	segs, _ := TokenizeEvents(prog, events)
	if len(segs) != 1 || len(segs[0].Tokens) != 1 {
		t.Fatalf("segs: %+v", segs)
	}
	tk := segs[0].Tokens[0]
	if tk.Op != bytecode.IFNE || !tk.HasDir || tk.Taken {
		t.Errorf("token: %v", tk)
	}
}

func TestTokenizeMergesAdjacentGaps(t *testing.T) {
	prog := bytecode.MustAssemble(fig2Src)
	events := []ptdecode.Event{
		{Kind: ptdecode.EvTemplate, Op: bytecode.ILOAD},
		{Kind: ptdecode.EvGap, LostBytes: 10, GapStart: 100, GapEnd: 200},
		{Kind: ptdecode.EvGap, LostBytes: 20, GapStart: 200, GapEnd: 300},
		{Kind: ptdecode.EvTemplate, Op: bytecode.ICONST},
	}
	segs, st := TokenizeEvents(prog, events)
	if len(segs) != 2 {
		t.Fatalf("segments: %d", len(segs))
	}
	g := segs[1].GapBefore
	if g == nil || g.LostBytes != 30 || g.Start != 100 || g.End != 300 {
		t.Errorf("merged gap: %+v", g)
	}
	if st.Gaps != 2 {
		t.Errorf("gap count: %d", st.Gaps)
	}
}

func TestSegmentAbstractionCaching(t *testing.T) {
	seg := &Segment{Tokens: fig2ElseTrace()}
	a := seg.Abstraction(2)
	b := seg.Abstraction(2)
	if &a[0] != &b[0] {
		t.Error("abstraction not cached")
	}
}
