package core

import (
	"testing"
	"testing/quick"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
)

// fig2Src is the paper's running example (Figure 2a).
const fig2Src = `
method Test.fun(2) returns int {
    iload 0
    ifeq Lelse
    iload 1
    iconst 1
    iadd
    istore 1
    goto Ljoin
Lelse:
    iload 1
    iconst 2
    isub
    istore 1
Ljoin:
    iload 1
    iconst 2
    irem
    ifne Lfalse
    iconst 1
    ireturn
Lfalse:
    iconst 0
    ireturn
}

method Test.main(0) {
    iconst 1
    iconst 7
    invokestatic Test.fun
    pop
    return
}
entry Test.main
`

func fig2Matcher(t *testing.T) (*bytecode.Program, *Matcher) {
	t.Helper()
	p := bytecode.MustAssemble(fig2Src)
	g := cfg.BuildICFG(p, cfg.DefaultOptions())
	return p, NewMatcher(g)
}

// tok builds an interpreter token.
func tok(op bytecode.Opcode) Token {
	return Token{Op: op, Method: bytecode.NoMethod}
}

func dtok(op bytecode.Opcode, taken bool) Token {
	return Token{Op: op, Method: bytecode.NoMethod, HasDir: true, Taken: taken}
}

// fig2TakenTrace is the decoded sequence of Figure 2(e): a=1 (ifeq not
// taken is... ifeq 0 jumps on zero; a=1 means fallthrough... the paper's
// trace takes the else path), b=7.
func fig2ElseTrace() []Token {
	return []Token{
		tok(bytecode.ILOAD),       // 0: iload_0
		dtok(bytecode.IFEQ, true), // 1: ifeq -> 11 (taken)
		tok(bytecode.ILOAD),       // 11
		tok(bytecode.ICONST),      // 12
		tok(bytecode.ISUB),        // 13
		tok(bytecode.ISTORE),      // 14
		tok(bytecode.ILOAD),       // 15
		tok(bytecode.ICONST),      // 16
		tok(bytecode.IREM),        // 17
		dtok(bytecode.IFNE, true), // 18 -> 23 (taken)
		tok(bytecode.ICONST),      // 23
		tok(bytecode.IRETURN),     // 24
	}
}

func TestMatchFromFig2(t *testing.T) {
	p, m := fig2Matcher(t)
	fun := p.MethodByName("Test.fun")
	toks := fig2ElseTrace()
	res := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks)
	if !res.Complete {
		t.Fatalf("matched only %d of %d", res.Matched, len(toks))
	}
	wantPCs := []int32{0, 1, 7, 8, 9, 10, 11, 12, 13, 14, 17, 18}
	for i, n := range res.Path {
		mid, pc := m.G.Location(n)
		if mid != fun.ID || pc != wantPCs[i] {
			t.Errorf("step %d: m%d@%d, want m%d@%d", i, mid, pc, fun.ID, wantPCs[i])
		}
	}
}

func TestMatchRejectsImpossibleSequence(t *testing.T) {
	_, m := fig2Matcher(t)
	toks := []Token{
		tok(bytecode.ILOAD),
		tok(bytecode.IADD), // no iload is followed by iadd in this program
	}
	res := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks)
	if res.Complete {
		t.Fatal("impossible sequence accepted")
	}
	if res.Matched != 1 {
		t.Errorf("matched %d, want 1", res.Matched)
	}
}

func TestMatchBranchDirectionSelectsSuccessor(t *testing.T) {
	p, m := fig2Matcher(t)
	fun := p.MethodByName("Test.fun")
	// Not-taken: ifeq falls through to iload@2.
	toks := []Token{tok(bytecode.ILOAD), dtok(bytecode.IFEQ, false), tok(bytecode.ILOAD), tok(bytecode.ICONST), tok(bytecode.IADD)}
	res := m.MatchFrom(m.NodesWithOp(bytecode.ILOAD), toks)
	if !res.Complete {
		t.Fatalf("not-taken path rejected (matched %d)", res.Matched)
	}
	_, pc := m.G.Location(res.Path[2])
	if pc != 2 {
		t.Errorf("fallthrough landed at %d, want 2", pc)
	}
	_ = fun
}

func TestLocatedTokensPinStates(t *testing.T) {
	p, m := fig2Matcher(t)
	fun := p.MethodByName("Test.fun")
	toks := []Token{
		{Op: bytecode.ILOAD, Method: fun.ID, PC: 15},
		{Op: bytecode.ICONST, Method: fun.ID, PC: 16},
		{Op: bytecode.IREM, Method: fun.ID, PC: 17},
	}
	res := m.MatchFrom(m.candidateStarts(&toks[0]), toks)
	if !res.Complete {
		t.Fatalf("located run rejected")
	}
	_, pc := m.G.Location(res.Path[0])
	if pc != 15 {
		t.Errorf("start at %d, want 15", pc)
	}
}

func TestReanchorOnLocatedGap(t *testing.T) {
	p, m := fig2Matcher(t)
	fun := p.MethodByName("Test.fun")
	// Skip pc16 (as C2 elision would): 15 -> 17 is not an ICFG edge, but
	// the located token re-anchors rather than failing.
	toks := []Token{
		{Op: bytecode.ILOAD, Method: fun.ID, PC: 15},
		{Op: bytecode.IREM, Method: fun.ID, PC: 17},
		{Op: bytecode.IFNE, Method: fun.ID, PC: 18, HasDir: true, Taken: false},
	}
	res := m.MatchFrom(m.candidateStarts(&toks[0]), toks)
	if !res.Complete {
		t.Fatalf("elided run rejected (matched %d)", res.Matched)
	}
	if res.Reanchors != 1 {
		t.Errorf("reanchors = %d, want 1", res.Reanchors)
	}
}

func TestAbstractAcceptanceNecessaryCondition(t *testing.T) {
	// Theorem 4.4: concrete acceptance implies abstract acceptance.
	// Property-check over random starting nodes and the two traces.
	_, m := fig2Matcher(t)
	traces := [][]Token{
		fig2ElseTrace(),
		{tok(bytecode.ILOAD), dtok(bytecode.IFEQ, false), tok(bytecode.ILOAD), tok(bytecode.ICONST), tok(bytecode.IADD), tok(bytecode.ISTORE), tok(bytecode.GOTO), tok(bytecode.ILOAD)},
	}
	f := func(nRaw uint16, which bool) bool {
		toks := traces[0]
		if which {
			toks = traces[1]
		}
		n := cfg.NodeID(int(nRaw) % m.G.NumNodes())
		concrete := m.MatchFrom([]cfg.NodeID{n}, toks).Complete
		abstract := m.IsAcceptedAbstract(n, AbstractTokens(toks))
		// concrete => abstract
		return !concrete || abstract
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateAndTestAgreesWithAbstractionGuided(t *testing.T) {
	_, m := fig2Matcher(t)
	traces := [][]Token{
		fig2ElseTrace(),
		{tok(bytecode.ILOAD), dtok(bytecode.IFEQ, false), tok(bytecode.ILOAD)},
		{tok(bytecode.ICONST), tok(bytecode.IRETURN)},
		{tok(bytecode.IADD), tok(bytecode.IADD)}, // impossible
	}
	for i, toks := range traces {
		r1, ok1 := m.EnumerateAndTest(toks)
		r2, ok2 := m.AbstractionGuided(toks)
		if ok1 != ok2 {
			t.Errorf("trace %d: alg1 ok=%v alg2 ok=%v", i, ok1, ok2)
		}
		if ok1 && (r1.Matched != r2.Matched) {
			t.Errorf("trace %d: matched %d vs %d", i, r1.Matched, r2.Matched)
		}
	}
}

func TestInterproceduralCallReturnMatch(t *testing.T) {
	p, m := fig2Matcher(t)
	main := p.MethodByName("Test.main")
	fun := p.MethodByName("Test.fun")
	toks := []Token{
		tok(bytecode.ICONST),       // main@0
		tok(bytecode.ICONST),       // main@1
		tok(bytecode.INVOKESTATIC), // main@2
		tok(bytecode.ILOAD),        // fun@0 (call edge)
		dtok(bytecode.IFEQ, true),  // fun@1
		tok(bytecode.ILOAD),        // fun@7
		tok(bytecode.ICONST),       // 8
		tok(bytecode.ISUB),         // 9
		tok(bytecode.ISTORE),       // 10
		tok(bytecode.ILOAD),        // 11
		tok(bytecode.ICONST),       // 12
		tok(bytecode.IREM),         // 13
		dtok(bytecode.IFNE, false), // 14 fallthrough
		tok(bytecode.ICONST),       // 15
		tok(bytecode.IRETURN),      // 16 -> return edge to main@3
		tok(bytecode.POP),          // main@3
		tok(bytecode.RETURN),       // main@4
	}
	res := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks)
	if !res.Complete {
		t.Fatalf("interprocedural trace rejected at %d", res.Matched)
	}
	mid, pc := m.G.Location(res.Path[3])
	if mid != fun.ID || pc != 0 {
		t.Errorf("call edge went to m%d@%d", mid, pc)
	}
	mid, pc = m.G.Location(res.Path[15])
	if mid != main.ID || pc != 3 {
		t.Errorf("return edge went to m%d@%d", mid, pc)
	}
}

func TestDynCallFallbackToEntries(t *testing.T) {
	src := `
table t0 = T.cb T.cb2
method T.cb(1) returns int {
    iload 0
    ireturn
}
method T.cb2(1) returns int {
    iconst 9
    ireturn
}
method T.main(0) {
    iconst 1
    iconst 0
    invokedyn t0
    pop
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	// Build the ICFG with dynamic calls UNRESOLVED: the matcher must fall
	// back to scanning method entries (the paper's callback search).
	g := cfg.BuildICFG(p, cfg.Options{ResolveDynCalls: false})
	m := NewMatcher(g)
	toks := []Token{
		tok(bytecode.ICONST),
		tok(bytecode.ICONST),
		tok(bytecode.INVOKEDYN),
		tok(bytecode.ILOAD), // T.cb entry
		tok(bytecode.IRETURN),
		tok(bytecode.POP),
		tok(bytecode.RETURN),
	}
	res := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks)
	if !res.Complete {
		t.Fatalf("callback fallback failed at %d", res.Matched)
	}
	if res.Fallbacks == 0 {
		t.Error("fallback path not exercised")
	}
	cb := p.MethodByName("T.cb")
	mid, pc := m.G.Location(res.Path[3])
	if mid != cb.ID || pc != 0 {
		t.Errorf("dyn call resolved to m%d@%d", mid, pc)
	}
}

func TestExceptionEdgeMatch(t *testing.T) {
	src := `
method T.m(1) returns int {
Ltry:
    iconst 10
    iload 0
    idiv
    ireturn
Lcatch:
    iconst 100
    iadd
    ireturn
    handler Ltry Lcatch Lcatch any
}
method T.main(0) {
    iconst 0
    invokestatic T.m
    pop
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	g := cfg.BuildICFG(p, cfg.DefaultOptions())
	m := NewMatcher(g)
	// idiv throws: flow goes idiv -> handler (iconst@4).
	toks := []Token{
		tok(bytecode.ICONST),
		tok(bytecode.ILOAD),
		tok(bytecode.IDIV),
		tok(bytecode.ICONST), // handler entry
		tok(bytecode.IADD),
		tok(bytecode.IRETURN),
	}
	res := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks)
	if !res.Complete {
		t.Fatalf("exception path rejected at %d", res.Matched)
	}
	meth := p.MethodByName("T.m")
	mid, pc := m.G.Location(res.Path[3])
	if mid != meth.ID || pc != 4 {
		t.Errorf("throw edge went to m%d@%d, want m%d@4", mid, pc, meth.ID)
	}
}

func TestReconstructSegmentSplitsOnHardMismatch(t *testing.T) {
	_, m := fig2Matcher(t)
	// Valid prefix, impossible middle token, valid suffix.
	toks := append(fig2ElseTrace(), tok(bytecode.SWAP)) // swap appears nowhere
	toks = append(toks, tok(bytecode.ICONST), tok(bytecode.IRETURN))
	seg := &Segment{Tokens: toks}
	flow := m.ReconstructSegment(seg)
	if flow.Skipped == 0 {
		t.Error("impossible token should be skipped")
	}
	if flow.Runs < 2 {
		t.Errorf("runs = %d, want >= 2", flow.Runs)
	}
	steps := flow.Steps()
	if len(steps) != len(toks)-1 {
		t.Errorf("steps %d, want %d", len(steps), len(toks)-1)
	}
}
