package core

import (
	"sort"

	"jportal/internal/cfg"
)

// RecoveryConfig tunes the §5 data-recovery phase.
type RecoveryConfig struct {
	// AnchorLen is x: how many trailing IS tokens form the anchor used to
	// locate candidate CSes (Figure 6's "XEF").
	AnchorLen int
	// ConfirmLen is y: how many post-hole tokens must match to conclude a
	// splice ("BDCA" in Figure 6).
	ConfirmLen int
	// TopN bounds the ranked candidate list tried in order (§5,
	// Recovery).
	TopN int
	// TimeBudgetSlack scales the timestamp-derived fill budget: the hole
	// duration times the observed token rate times this slack.
	TimeBudgetSlack float64
	// MaxFillTokens caps any single fill.
	MaxFillTokens int
	// FallbackWalkMax bounds the ICFG walk used when no CS fits.
	FallbackWalkMax int
	// Disable turns recovery off entirely (ablation C).
	Disable bool
}

// DefaultRecoveryConfig mirrors the paper's setup.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		AnchorLen:       4,
		ConfirmLen:      4,
		TopN:            8,
		TimeBudgetSlack: 1.6,
		MaxFillTokens:   60000,
		FallbackWalkMax: 64,
	}
}

// FillMethod records how a hole was filled.
type FillMethod uint8

const (
	// FillNone: the hole could not be filled.
	FillNone FillMethod = iota
	// FillCS: filled from a matching complete segment whose continuation
	// reconnected with the post-hole instructions (Algorithm 4).
	FillCS
	// FillPartial: spliced from the best-matching CS up to the timestamp
	// budget without reconnecting (an engineering extension: better than
	// discarding the candidate when every CS is shorter than the hole).
	FillPartial
	// FillWalk: filled by walking the ICFG between the hole's endpoints
	// (the paper's random-path fallback).
	FillWalk
)

// Fill is the recovery result for one hole.
type Fill struct {
	Method FillMethod
	Steps  []Step
	// CandidatesTried and TierPrunes are diagnostics for the ablation.
	CandidatesTried int
	TierPrunes      int
}

// Recoverer implements §5 over one thread's reconstructed segments.
type Recoverer struct {
	m     *Matcher
	cfg   RecoveryConfig
	flows []*SegmentFlow

	// anchor index: hash of AnchorLen consecutive MatchKeys -> positions
	// (the position is the index just past the anchor).
	index anchorIndex

	// tokenRate is tokens per cycle, estimated from captured data.
	tokenRate float64
}

type anchorPos struct {
	seg int32
	pos int32
}

// anchorIndex is a multi-map from anchor hash to anchor positions. All
// positions live in one flat preallocated entry array, chained per hash
// through next indices, with the map holding only a compact head/tail
// pair per distinct hash — no per-hash slice allocations (those
// dominated the recovery path's allocations as a map[uint64][]anchorPos)
// and O(1) insertion even for the highly duplicated hashes repetitive
// code produces. visit walks a hash's chain in insertion order, which
// keeps candidate ranking deterministic.
type anchorIndex struct {
	chains  map[uint64]anchorChain
	entries []anchorEntry
}

// anchorChain is one hash's chain: indices of the first and last entry.
type anchorChain struct {
	head, tail int32
}

// anchorEntry is one position plus the index of the next entry with the
// same hash (-1 terminates the chain).
type anchorEntry struct {
	pos  anchorPos
	next int32
}

func newAnchorIndex(capacity int) anchorIndex {
	return anchorIndex{
		chains:  make(map[uint64]anchorChain, capacity/8+1),
		entries: make([]anchorEntry, 0, capacity),
	}
}

func (ix *anchorIndex) add(h uint64, seg, pos int32) {
	i := int32(len(ix.entries))
	ix.entries = append(ix.entries, anchorEntry{pos: anchorPos{seg: seg, pos: pos}, next: -1})
	if c, ok := ix.chains[h]; ok {
		ix.entries[c.tail].next = i
		c.tail = i
		ix.chains[h] = c
	} else {
		ix.chains[h] = anchorChain{head: i, tail: i}
	}
}

// visit calls fn for every position recorded under h, insertion order.
func (ix *anchorIndex) visit(h uint64, fn func(anchorPos)) {
	c, ok := ix.chains[h]
	if !ok {
		return
	}
	for i := c.head; i >= 0; i = ix.entries[i].next {
		fn(ix.entries[i].pos)
	}
}

// NewRecoverer builds the anchor index over all of the thread's segments
// (every segment is a potential CS for some other segment's hole — the
// paper notes "complete" and "incomplete" are relative).
//
// Construction also forces every segment's tier-1/tier-2 abstraction
// caches: after NewRecoverer returns, the recoverer, its index and all
// segments are strictly read-only, so RecoverHole may be called for
// different holes from concurrent goroutines.
func NewRecoverer(m *Matcher, flows []*SegmentFlow, cfg RecoveryConfig) *Recoverer {
	// Size the flat index to its exact entry count: one entry per
	// indexable token position.
	positions := 0
	for _, f := range flows {
		if f != nil && !f.Quarantined && len(f.Seg.Tokens) >= cfg.AnchorLen {
			positions += len(f.Seg.Tokens) - cfg.AnchorLen + 1
		}
	}
	r := &Recoverer{m: m, cfg: cfg, flows: flows, index: newAnchorIndex(positions)}
	var tokens uint64
	var activeSpan uint64
	for si, f := range flows {
		if f == nil || f.Quarantined {
			// Quarantined segments hold untrusted tokens: splicing them
			// into holes would launder corrupt data back into the profile.
			continue
		}
		f.Seg.ensureAbs() // lazily-built otherwise: a data race under concurrent recovery
		toks := f.Seg.Tokens
		tokens += uint64(len(toks))
		if n := len(toks); n > 1 && toks[n-1].TSC > toks[0].TSC {
			// Sum only the spans the thread was actually captured in, so
			// the rate is not diluted by idle or lost periods.
			activeSpan += toks[n-1].TSC - toks[0].TSC
		}
		if len(toks) < cfg.AnchorLen {
			continue
		}
		h := uint64(0)
		for i := 0; i < len(toks); i++ {
			h = anchorHash(h, toks[i].MatchKey(), i, cfg.AnchorLen, toks)
			if i+1 >= cfg.AnchorLen {
				r.index.add(h, int32(si), int32(i+1))
			}
		}
	}
	if activeSpan > 0 && tokens > 0 {
		r.tokenRate = float64(tokens) / float64(activeSpan)
	} else {
		r.tokenRate = 0.1
	}
	return r
}

// anchorHash computes the hash of the window of AnchorLen keys ending at
// index i. A simple recompute keeps it obviously correct; the window is
// tiny.
func anchorHash(_ uint64, _ uint64, i, x int, toks []Token) uint64 {
	if i+1 < x {
		return 0
	}
	h := uint64(0x9e3779b97f4a7c15)
	for j := i + 1 - x; j <= i; j++ {
		h ^= toks[j].MatchKey()
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	return h
}

// suffixMatch compares keys backwards and returns the common-suffix length.
// a ends at ai (exclusive), b ends at bi (exclusive).
func suffixKeys(a []Token, ai int, b []Token, bi int) int {
	n := 0
	for ai-n > 0 && bi-n > 0 && a[ai-n-1].MatchKey() == b[bi-n-1].MatchKey() {
		n++
	}
	return n
}

// suffixAbs compares tier-l abstracted sequences backwards. ia/ib are the
// exclusive abstract end positions.
func suffixAbs(sa *Segment, ia int32, sb *Segment, ib int32, l int) int {
	aa := sa.Abstraction(l)
	ab := sb.Abstraction(l)
	n := int32(0)
	for ia-n > 0 && ib-n > 0 &&
		sa.Tokens[aa[ia-n-1]].MatchKey() == sb.Tokens[ab[ib-n-1]].MatchKey() {
		n++
	}
	return int(n)
}

// candidate is one potential CS with its tiered match lengths.
type candidate struct {
	seg           int32
	pos           int32
	ml1, ml2, ml3 int
}

// searchCS is Algorithm 4: rank the anchor-matching candidates by common
// suffix with the IS, comparing tier-1 first, then tier-2, then concrete,
// skipping candidates that a higher tier already rules out (Theorem 5.5).
// It returns the TopN candidates, best first, plus diagnostics.
func (r *Recoverer) searchCS(isIdx int) ([]candidate, int, int) {
	if f := r.flows[isIdx]; f == nil || f.Quarantined {
		return nil, 0, 0 // no trustworthy anchor to search from
	}
	is := r.flows[isIdx].Seg
	n := len(is.Tokens)
	if n < r.cfg.AnchorLen {
		return nil, 0, 0
	}
	h := anchorHash(0, 0, n-1, r.cfg.AnchorLen, is.Tokens)
	var cands []candidate
	tried, pruned := 0, 0
	m1, m2, m3 := 0, 0, 0
	r.index.visit(h, func(ap anchorPos) {
		if int(ap.seg) == isIdx && int(ap.pos) == n {
			return // the IS's own tail
		}
		cs := r.flows[ap.seg].Seg
		// Verify the anchor (hash collisions).
		if suffixKeys(is.Tokens, n, cs.Tokens, int(ap.pos)) < r.cfg.AnchorLen {
			return
		}
		tried++
		// Tier 1 (call structure).
		ml1 := suffixAbs(is, is.AbsPrefix(1, n), cs, cs.AbsPrefix(1, int(ap.pos)), 1)
		if ml1 < m1 {
			pruned++
			return
		}
		// Tier 2 (control structure).
		ml2 := suffixAbs(is, is.AbsPrefix(2, n), cs, cs.AbsPrefix(2, int(ap.pos)), 2)
		if ml2 < m2 {
			pruned++
			return
		}
		// Tier 3 (concrete).
		ml3 := suffixKeys(is.Tokens, n, cs.Tokens, int(ap.pos))
		c := candidate{seg: ap.seg, pos: ap.pos, ml1: ml1, ml2: ml2, ml3: ml3}
		cands = append(cands, c)
		if ml3 >= m3 {
			m1, m2, m3 = ml1, ml2, ml3
		}
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ml3 != cands[j].ml3 {
			return cands[i].ml3 > cands[j].ml3
		}
		if cands[i].ml2 != cands[j].ml2 {
			return cands[i].ml2 > cands[j].ml2
		}
		if cands[i].ml1 != cands[j].ml1 {
			return cands[i].ml1 > cands[j].ml1
		}
		if cands[i].seg != cands[j].seg {
			return cands[i].seg < cands[j].seg
		}
		return cands[i].pos < cands[j].pos
	})
	if len(cands) > r.cfg.TopN {
		cands = cands[:r.cfg.TopN]
	}
	return cands, tried, pruned
}

// searchCSNaive is Algorithm 3: enumerate anchor-matching candidates and
// pick the one with the longest concrete common suffix, with no tier
// pruning. Used by the ablation benchmarks.
func (r *Recoverer) searchCSNaive(isIdx int) (candidate, bool) {
	if f := r.flows[isIdx]; f == nil || f.Quarantined {
		return candidate{}, false
	}
	is := r.flows[isIdx].Seg
	n := len(is.Tokens)
	if n < r.cfg.AnchorLen {
		return candidate{}, false
	}
	anchor := is.Tokens[n-r.cfg.AnchorLen:]
	best := candidate{ml3: -1}
	found := false
	for si, f := range r.flows {
		if f == nil || f.Quarantined {
			continue
		}
		toks := f.Seg.Tokens
		for p := r.cfg.AnchorLen; p <= len(toks); p++ {
			if si == isIdx && p == n {
				continue
			}
			ok := true
			for j := 0; j < r.cfg.AnchorLen; j++ {
				if toks[p-r.cfg.AnchorLen+j].MatchKey() != anchor[j].MatchKey() {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ml3 := suffixKeys(is.Tokens, n, toks, p)
			if ml3 > best.ml3 {
				best = candidate{seg: int32(si), pos: int32(p), ml3: ml3}
				found = true
			}
		}
	}
	return best, found
}

// SearchTiered runs the Algorithm 4 candidate search (anchor index plus
// tier-1/tier-2/concrete suffix comparison with Theorem 5.5 pruning) for
// the hole after segment isIdx and reports the best concrete suffix length,
// the candidates examined and the candidates pruned at an abstract tier.
// Exposed for the ablation benchmarks.
func (r *Recoverer) SearchTiered(isIdx int) (best, tried, pruned int) {
	cands, tried, pruned := r.searchCS(isIdx)
	if len(cands) > 0 {
		best = cands[0].ml3
	}
	return best, tried, pruned
}

// SearchNaive runs the Algorithm 3 search (anchor scan with concrete-only
// comparison, no abstraction pruning) and reports the best concrete suffix
// length. Exposed for the ablation benchmarks.
func (r *Recoverer) SearchNaive(isIdx int) (best int, found bool) {
	c, ok := r.searchCSNaive(isIdx)
	return c.ml3, ok
}

// RecoverHole fills the hole after segment isIdx (before segment isIdx+1)
// per §5: try the ranked CSes, reading the winning CS's suffix until the
// post-hole instructions are reached or the timestamp budget runs out, then
// fall back to an ICFG walk.
func (r *Recoverer) RecoverHole(isIdx int) Fill {
	if r.cfg.Disable {
		return Fill{}
	}
	nextFlow := r.flows[isIdx+1]
	if nextFlow == nil || r.flows[isIdx] == nil {
		return Fill{}
	}
	gap := nextFlow.Seg.GapBefore
	// The timestamps around the hole tell us roughly how much execution
	// is missing (paper §5, Recovery): the splice must read about d's
	// worth of instructions from the CS — not accept the first trivial
	// match, which in repetitive code would appear immediately.
	budget := r.cfg.MaxFillTokens
	expected := 0
	if gap != nil && gap.Duration() > 0 {
		expected = int(float64(gap.Duration()) * r.tokenRate)
		b := int(float64(expected) * r.cfg.TimeBudgetSlack)
		if b < r.cfg.ConfirmLen*4 {
			b = r.cfg.ConfirmLen * 4
		}
		if b < budget {
			budget = b
		}
		if expected > r.cfg.MaxFillTokens {
			expected = r.cfg.MaxFillTokens
		}
	}
	kMin := expected * 7 / 10

	cands, tried, pruned := r.searchCS(isIdx)
	fill := Fill{CandidatesTried: tried, TierPrunes: pruned}
	post := nextFlow.Seg.Tokens
	if nextFlow.Quarantined {
		post = nil // untrusted tokens cannot confirm a splice
	}
	var bestPartial []Step
	for _, c := range cands {
		steps, connected := r.chainFill(&c, kMin, budget, gap, post)
		if connected {
			fill.Method = FillCS
			fill.Steps = steps
			return fill
		}
		if len(steps) > len(bestPartial) {
			bestPartial = steps
		}
	}
	// No candidate reconnected within the budget. Keep the longest
	// splice when the hole is substantial, rather than dropping to a
	// blind walk.
	if expected > r.cfg.ConfirmLen*4 && len(bestPartial) >= r.cfg.ConfirmLen*4 {
		fill.Method = FillPartial
		fill.Steps = bestPartial
		return fill
	}
	// Fallback: walk the ICFG from the last projected node of the IS to
	// the first projected node after the hole.
	if steps, ok := r.fallbackWalk(isIdx, gap); ok {
		fill.Method = FillWalk
		fill.Steps = steps
	}
	return fill
}

// chainFill splices the CS continuation starting at candidate c; when the
// CS runs out before the hole is covered, it re-anchors from the splice's
// own tail and continues from the next best matching position (holes can be
// longer than any single complete segment). It reports whether the splice
// reconnected with the post-hole tokens.
func (r *Recoverer) chainFill(c *candidate, kMin, budget int, gap *GapInfo, post []Token) ([]Step, bool) {
	y := r.cfg.ConfirmLen
	if y > len(post) {
		y = len(post)
	}
	if y == 0 {
		return nil, false
	}
	var toks []Token
	var steps []Step
	finish := func(connected bool) ([]Step, bool) {
		for i := range steps {
			steps[i].TSC = fillTSC(gap, i, len(steps))
		}
		return steps, connected
	}
	seg, pos := c.seg, int(c.pos)
	for hops := 0; hops < 8; hops++ {
		csFlow := r.flows[seg]
		cst := csFlow.Seg.Tokens
		for i := pos; i < len(cst); i++ {
			// Does the continuation here line up with the post-hole
			// tokens (and have we consumed enough of the budget for the
			// hole's duration)?
			if len(toks) >= kMin && i+y <= len(cst) {
				match := true
				for j := 0; j < y; j++ {
					if cst[i+j].MatchKey() != post[j].MatchKey() {
						match = false
						break
					}
				}
				if match {
					return finish(true)
				}
			}
			if len(toks) >= budget {
				return finish(false)
			}
			toks = append(toks, cst[i])
			if n := csFlow.Nodes[i]; n != cfg.NoNode {
				mid, pc := r.m.G.Location(n)
				steps = append(steps, Step{Method: mid, PC: pc, Recovered: true})
			}
		}
		np, ok := r.continueFrom(toks)
		if !ok {
			break
		}
		seg, pos = np.seg, int(np.pos)
	}
	return finish(false)
}

// continueFrom locates the position whose context best matches the tail of
// the splice so far (the chained re-anchor).
func (r *Recoverer) continueFrom(tail []Token) (anchorPos, bool) {
	x := r.cfg.AnchorLen
	if len(tail) < x {
		return anchorPos{}, false
	}
	h := anchorHash(0, 0, len(tail)-1, x, tail)
	var best anchorPos
	bestLen := -1
	const window = 64
	r.index.visit(h, func(ap anchorPos) {
		cs := r.flows[ap.seg].Seg
		n := suffixKeys(tail, len(tail), cs.Tokens, int(ap.pos))
		if n < x {
			return // hash collision
		}
		if n > window {
			n = window
		}
		// Prefer positions with actual continuation left.
		if int(ap.pos) >= len(cs.Tokens) {
			return
		}
		if n > bestLen {
			bestLen = n
			best = ap
		}
	})
	return best, bestLen >= x
}

// fillTSC interpolates timestamps across the hole.
func fillTSC(gap *GapInfo, i, k int) uint64 {
	if gap == nil || k == 0 {
		return 0
	}
	return gap.Start + gap.Duration()*uint64(i)/uint64(k)
}

// fallbackWalk finds any ICFG path connecting the pre- and post-hole
// instructions (bounded BFS); the paper returns a random connecting path
// when no CS fits.
func (r *Recoverer) fallbackWalk(isIdx int, gap *GapInfo) ([]Step, bool) {
	from := lastNode(r.flows[isIdx])
	to := firstNode(r.flows[isIdx+1])
	if from == cfg.NoNode || to == cfg.NoNode {
		return nil, false
	}
	// BFS over successors, treating every edge as viable (directions
	// unknown inside the hole).
	type qe struct {
		n    cfg.NodeID
		prev int32
	}
	visited := map[cfg.NodeID]bool{from: true}
	queue := []qe{{n: from, prev: -1}}
	foundAt := -1
	for qi := 0; qi < len(queue) && qi < r.cfg.FallbackWalkMax*16; qi++ {
		cur := queue[qi]
		if cur.n == to && qi != 0 {
			foundAt = qi
			break
		}
		depth := 0
		for p := cur.prev; p >= 0; p = queue[p].prev {
			depth++
		}
		if depth >= r.cfg.FallbackWalkMax {
			continue
		}
		for _, e := range r.m.G.Succs[cur.n] {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, qe{n: e.To, prev: int32(qi)})
			}
		}
	}
	if foundAt < 0 {
		return nil, false
	}
	var rev []cfg.NodeID
	for p := int32(foundAt); p >= 0; p = queue[p].prev {
		rev = append(rev, queue[p].n)
	}
	// rev includes `from` (already emitted) and `to` (will be emitted by
	// the next segment); keep the interior.
	if len(rev) <= 2 {
		return nil, true
	}
	k := len(rev) - 2
	steps := make([]Step, 0, k)
	for i := len(rev) - 2; i >= 1; i-- {
		mid, pc := r.m.G.Location(rev[i])
		steps = append(steps, Step{Method: mid, PC: pc, TSC: fillTSC(gap, len(steps), k), Recovered: true})
	}
	return steps, true
}

func lastNode(f *SegmentFlow) cfg.NodeID {
	for i := len(f.Nodes) - 1; i >= 0; i-- {
		if f.Nodes[i] != cfg.NoNode {
			return f.Nodes[i]
		}
	}
	return cfg.NoNode
}

func firstNode(f *SegmentFlow) cfg.NodeID {
	for i := 0; i < len(f.Nodes); i++ {
		if f.Nodes[i] != cfg.NoNode {
			return f.Nodes[i]
		}
	}
	return cfg.NoNode
}
