package core

import (
	"reflect"
	"sync"
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
)

// These tests are the race-regression suite for the read-only Matcher
// contract: after NewMatcher returns, every query path (CtrlReach,
// MatchFrom, IsAcceptedAbstract) must be safe for concurrent callers.
// Run them under -race (ci.sh does) — before ctrlReach was precomputed
// eagerly, concurrent CtrlReach calls raced on the lazy memo map.

func TestCtrlReachConcurrent(t *testing.T) {
	_, m := fig2Matcher(t)
	n := m.G.NumNodes()

	// Serial baseline: copy out every node's reach set first.
	want := make([][]cfg.NodeID, n)
	for v := 0; v < n; v++ {
		want[v] = append([]cfg.NodeID(nil), m.CtrlReach(cfg.NodeID(v))...)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for v := 0; v < n; v++ {
					got := m.CtrlReach(cfg.NodeID(v))
					if !reflect.DeepEqual(got, want[v]) {
						t.Errorf("goroutine %d: CtrlReach(%d) = %v, want %v", g, v, got, want[v])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMatchFromConcurrent(t *testing.T) {
	_, m := fig2Matcher(t)
	toks := fig2ElseTrace()
	starts := m.NodesWithOp(toks[0].Op)

	want := m.MatchFrom(starts, toks)
	if !want.Complete {
		t.Fatalf("baseline incomplete: %d/%d", want.Matched, len(toks))
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				got := m.MatchFrom(starts, toks)
				if got.Complete != want.Complete || got.Matched != want.Matched ||
					!reflect.DeepEqual(got.Path, want.Path) {
					t.Errorf("goroutine %d rep %d: diverged from serial result", g, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestScratchReuseMatchesFresh drives one scratch through dissimilar
// queries back to back: the generation-marked seen sets and recycled
// layer buffers must not leak state between calls.
func TestScratchReuseMatchesFresh(t *testing.T) {
	_, m := fig2Matcher(t)
	full := fig2ElseTrace()
	cases := [][]Token{
		full,
		{tok(bytecode.ILOAD), tok(bytecode.IADD)}, // rejected after 1
		full[:4],
		{tok(bytecode.ILOAD), dtok(bytecode.IFEQ, false), tok(bytecode.ILOAD)},
		full,
	}

	sc := m.NewScratch()
	for rep := 0; rep < 3; rep++ {
		for ci, toks := range cases {
			starts := m.NodesWithOp(toks[0].Op)
			want := m.MatchFrom(starts, toks) // pooled, but independent scratch
			got := m.MatchFromScratch(sc, starts, toks)
			if got.Complete != want.Complete || got.Matched != want.Matched ||
				!reflect.DeepEqual(got.Path, want.Path) {
				t.Fatalf("rep %d case %d: reused scratch diverged (got %d/%v, want %d/%v)",
					rep, ci, got.Matched, got.Complete, want.Matched, want.Complete)
			}
		}
	}
}

// TestIsAcceptedAbstractConcurrent exercises the abstraction-check path
// (used by hole recovery) from multiple goroutines.
func TestIsAcceptedAbstractConcurrent(t *testing.T) {
	p, m := fig2Matcher(t)
	fun := p.MethodByName("Test.fun")
	// Abstract tokens of the else-path trace, all within Test.fun.
	toks := fig2ElseTrace()
	atoks := make([]Token, len(toks))
	for i, tk := range toks {
		tk.Method = fun.ID
		atoks[i] = tk
	}
	starts := m.NodesWithOp(toks[0].Op)
	if len(starts) == 0 {
		t.Fatal("no start nodes")
	}

	want := make([]bool, len(starts))
	for i, s := range starts {
		want[i] = m.IsAcceptedAbstract(s, atoks)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, s := range starts {
					if got := m.IsAcceptedAbstract(s, atoks); got != want[i] {
						t.Errorf("goroutine %d: IsAcceptedAbstract(start %d) = %v, want %v", g, i, got, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
