package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"jportal/internal/conc"
	"jportal/internal/fault"
	"jportal/internal/meta"
	"jportal/internal/source"
)

// ThreadAnalyzer is the resumable form of Pipeline.AnalyzeThread: one
// thread's stitched packet stream is fed in chunks, decoded and tokenized
// incrementally, and reconstructed in waves bounded by
// PipelineConfig.MaxPendingSegments, so the decoded-but-unreconstructed
// backlog — not the whole trace — is what stays in memory.
//
// Hole recovery deliberately runs only at Finish: the §5 recoverer indexes
// every flow of the thread as a candidate continuation sequence for every
// hole (an early segment can splice a late hole), so recovering before the
// stream ends would change fills. Wave boundaries, by contrast, are
// invisible: reconstruction is per-segment and order-preserving, so Finish
// returns byte-identical results to the batch call for any chunking and any
// cap.
type ThreadAnalyzer struct {
	p        *Pipeline
	snap     *meta.Snapshot
	dec      source.Decoder
	tk       *tokenizer
	res      *ThreadResult
	pend     []*Segment
	finished bool
	// ledger, when set, receives quarantine entries (decode faults, stage
	// crashes). Nil drops them.
	ledger *fault.Ledger
	// harvested decoder-fault watermarks, so each Feed reports only the
	// new faults to the ledger.
	seenFaults  int
	seenSkipped uint64
	seenDesyncs int
	seenRegress int
	// carried* accumulate diagnostics of decoders discarded after a stage
	// crash, so Finish reports the whole thread.
	carriedDesyncs  int
	carriedFaults   int
	carriedSkipPkts int
	carriedSkipByte uint64
	// segsSeen counts segments consumed by reconstruction waves — the
	// analyzer's watchdog heartbeat. Read via SegmentsSeen after a fan-out
	// returns (same-goroutine visibility).
	segsSeen uint64
	// timedOut records that the caller's deadline cut this thread short.
	// Atomic: reconstruction workers set it concurrently.
	timedOut atomic.Bool
}

// NewThreadAnalyzer starts the analysis of one thread's stream.
func (p *Pipeline) NewThreadAnalyzer(thread int, snap *meta.Snapshot) *ThreadAnalyzer {
	return &ThreadAnalyzer{
		p:    p,
		snap: snap,
		dec:  p.Source().NewDecoder(snap),
		tk:   newTokenizer(p.Prog),
		res:  &ThreadResult{Thread: thread},
	}
}

// SetLedger attaches the quarantine ledger exclusions are reported to.
func (a *ThreadAnalyzer) SetLedger(l *fault.Ledger) { a.ledger = l }

// Feed analyses the next chunk of the thread's stitched stream. When the
// completed-segment backlog reaches MaxPendingSegments, it is reconstructed
// as a wave (fanning out to the configured workers) and released.
func (a *ThreadAnalyzer) Feed(items []source.Item) {
	a.FeedContext(context.Background(), items)
}

// FeedContext is Feed with deadline awareness: once ctx is cancelled the
// chunk is quarantined under the deadline reason instead of decoded, so a
// timed-out analysis stops consuming CPU but stays structurally valid —
// Finish still returns a partial ThreadResult.
func (a *ThreadAnalyzer) FeedContext(ctx context.Context, items []source.Item) {
	if a.finished {
		panic("core: ThreadAnalyzer.Feed after Finish")
	}
	if ctx.Err() != nil {
		a.quarantineDeadline(len(items), chunkBytes(items), "feed cancelled")
		return
	}
	t0 := time.Now()
	a.safeFeed(items)
	a.harvestFaults()
	a.pend = append(a.pend, a.tk.take()...)
	if cap := a.p.Cfg.MaxPendingSegments; cap > 0 && len(a.pend) >= cap {
		a.reconstructContext(ctx)
	}
	a.res.DecodeTime += time.Since(t0)
}

// quarantineDeadline records input dropped because the caller's context
// expired and marks the thread timed out.
func (a *ThreadAnalyzer) quarantineDeadline(items int, bytes uint64, detail string) {
	a.timedOut.Store(true)
	a.ledger.Add(fault.Entry{
		Reason: fault.ReasonDeadline, Thread: a.res.Thread, Core: -1,
		Items: items, Bytes: bytes, Detail: detail,
	})
}

// SegmentsSeen returns how many segments reconstruction has consumed — a
// monotone progress heartbeat for the watchdog. Read it from the goroutine
// that drives the analyzer (or after a fan-out has returned).
func (a *ThreadAnalyzer) SegmentsSeen() uint64 { return a.segsSeen }

// TimedOut reports whether a deadline cut this thread's analysis short.
func (a *ThreadAnalyzer) TimedOut() bool { return a.timedOut.Load() }

// safeFeed runs the decode+tokenize of one chunk with panic containment:
// a crash quarantines this chunk only, rebuilds the decoder (its walking
// state is what crashed) and splits the token stream behind a synthetic
// desync, so the thread — and every other thread — keeps analysing. It
// runs inside the Session's per-thread fan-out, where an escaped panic
// would kill the process.
func (a *ThreadAnalyzer) safeFeed(items []source.Item) {
	defer func() {
		if r := recover(); r != nil {
			a.ledger.Add(fault.Entry{
				Reason: fault.ReasonStageCrash, Thread: a.res.Thread, Core: -1,
				Items: len(items), Bytes: chunkBytes(items),
				Detail: fmt.Sprintf("decode: %v", r),
			})
			ds := a.dec.Stats()
			a.carriedDesyncs += ds.Desyncs
			a.carriedFaults += ds.FaultCount
			a.carriedSkipPkts += ds.SkippedPackets
			a.carriedSkipByte += ds.SkippedBytes
			a.seenFaults, a.seenSkipped, a.seenDesyncs = 0, 0, 0
			a.dec = a.p.Source().NewDecoder(a.snap)
			a.tk.breakSegment()
		}
	}()
	a.tk.feed(a.dec.DecodeChunk(items))
}

// harvestFaults reports the decode stage's new typed exclusions to the
// ledger: malformed packets (with the bytes skipped to the next PSB),
// lost-sync episodes, and per-thread time regressions.
func (a *ThreadAnalyzer) harvestFaults() {
	if a.ledger == nil {
		return
	}
	ds := a.dec.Stats()
	if n := ds.FaultCount; n > a.seenFaults {
		a.ledger.Add(fault.Entry{
			Reason: fault.ReasonMalformedPacket, Thread: a.res.Thread, Core: -1,
			Count: n - a.seenFaults, Bytes: ds.SkippedBytes - a.seenSkipped,
		})
		a.seenFaults = n
		a.seenSkipped = ds.SkippedBytes
	}
	if n := ds.Desyncs; n > a.seenDesyncs {
		a.ledger.Add(fault.Entry{
			Reason: fault.ReasonLostSync, Thread: a.res.Thread, Core: -1,
			Count: n - a.seenDesyncs,
		})
		a.seenDesyncs = n
	}
	if n := a.tk.st.TimeRegressions; n > a.seenRegress {
		a.ledger.Add(fault.Entry{
			Reason: fault.ReasonClockSkew, Thread: a.res.Thread, Core: -1,
			Count: n - a.seenRegress,
		})
		a.seenRegress = n
	}
}

func chunkBytes(items []source.Item) uint64 {
	var n uint64
	for i := range items {
		if !items[i].Gap {
			n += uint64(items[i].Packet.WireLen)
		}
	}
	return n
}

// PendingSegments returns the decoded-but-unreconstructed backlog.
func (a *ThreadAnalyzer) PendingSegments() int { return len(a.pend) }

// reconstruct projects the pending segments onto the ICFG, appending their
// flows in segment order (slot-addressed, so identical for any worker
// count), and drops the segment references.
func (a *ThreadAnalyzer) reconstruct() { a.reconstructContext(context.Background()) }

// reconstructContext is reconstruct under a deadline: segments whose turn
// comes after ctx is cancelled are quarantined (an empty, Quarantined flow
// — never nil, so slot addressing and hole bookkeeping stay intact) rather
// than projected.
func (a *ThreadAnalyzer) reconstructContext(ctx context.Context) {
	if len(a.pend) == 0 {
		return
	}
	base := len(a.res.Flows)
	a.res.Flows = append(a.res.Flows, make([]*SegmentFlow, len(a.pend))...)
	pend := a.pend
	var cancelled atomic.Int64
	// Scratch comes from the matcher's pool (released after the wave),
	// so repeated waves reuse warm buffers instead of reallocating and
	// re-zeroing the NumNodes-sized seen[] each time.
	conc.ParallelWorkRelease(a.p.Cfg.WorkerCount(), len(pend),
		a.p.Matcher.getScratch, a.p.Matcher.putScratch,
		func(sc *MatchScratch, i int) {
			if ctx.Err() != nil {
				a.timedOut.Store(true)
				cancelled.Add(1)
				a.res.Flows[base+i] = quarantinedFlow(pend[i], a.p.Matcher.G)
				return
			}
			a.res.Flows[base+i] = a.safeReconstruct(sc, pend[i])
		})
	if n := cancelled.Load(); n > 0 {
		a.ledger.Add(fault.Entry{
			Reason: fault.ReasonDeadline, Thread: a.res.Thread, Core: -1,
			Count: int(n), Items: int(n), Detail: "reconstruction cancelled",
		})
	}
	a.segsSeen += uint64(len(pend))
	for i := range a.pend {
		a.pend[i] = nil
	}
	a.pend = a.pend[:0]
}

// safeReconstruct projects one segment with panic containment: a matcher
// crash (tokens from stale or hostile JIT metadata can carry PCs no ICFG
// node exists for) quarantines that segment — recorded as an empty,
// Quarantined flow so slot addressing and hole bookkeeping stay intact —
// instead of killing the worker pool.
func (a *ThreadAnalyzer) safeReconstruct(sc *MatchScratch, seg *Segment) (f *SegmentFlow) {
	defer func() {
		if r := recover(); r != nil {
			a.ledger.Add(fault.Entry{
				Reason: fault.ReasonStaleMetadata, Thread: a.res.Thread, Core: -1,
				Items:  len(seg.Tokens),
				Detail: fmt.Sprintf("reconstruct: %v", r),
			})
			f = quarantinedFlow(seg, a.p.Matcher.G)
		}
	}()
	return a.p.Matcher.ReconstructSegmentScratch(sc, seg)
}

// Finish flushes the decoder and tokenizer, reconstructs the remaining
// segments, runs §5 hole recovery over the complete flow sequence, and
// merges the end-to-end profile — exactly AnalyzeThread's tail. Repeated
// calls return the same result.
func (a *ThreadAnalyzer) Finish() *ThreadResult {
	return a.FinishContext(context.Background())
}

// FinishContext is Finish under a deadline: once ctx is cancelled, pending
// segments are quarantined instead of reconstructed and §5 recovery is
// skipped (every hole stays a hole — degradation, not failure), so a
// timed-out Close returns a partial-but-valid ThreadResult promptly.
func (a *ThreadAnalyzer) FinishContext(ctx context.Context) *ThreadResult {
	if a.finished {
		return a.res
	}
	a.finished = true
	res := a.res

	t0 := time.Now()
	a.tk.feed(a.dec.Flush())
	a.harvestFaults()
	a.pend = append(a.pend, a.tk.finish()...)
	ds := a.dec.Stats()
	st := a.tk.st
	st.NativeDesyncs = a.carriedDesyncs + ds.Desyncs
	st.MalformedPackets = a.carriedFaults + ds.FaultCount
	st.SkippedPackets = a.carriedSkipPkts + ds.SkippedPackets
	st.QuarantinedBytes = a.carriedSkipByte + ds.SkippedBytes
	res.Decode = st
	a.reconstructContext(ctx)
	res.DecodeTime += time.Since(t0)

	t1 := time.Now()
	var rec *Recoverer
	if ctx.Err() == nil {
		rec = a.safeRecoverer()
	} else if a.timedOut.CompareAndSwap(false, true) {
		// The deadline landed between reconstruction and recovery: no
		// segment was cut, but recovery is skipped — record why.
		a.ledger.Add(fault.Entry{
			Reason: fault.ReasonDeadline, Thread: a.res.Thread, Core: -1,
			Detail: "recovery skipped",
		})
	}
	res.Fills = make([]Fill, len(res.Flows))
	if rec != nil {
		conc.ParallelFor(a.p.Cfg.WorkerCount(), len(res.Flows)-1, func(i int) {
			if ctx.Err() != nil {
				a.timedOut.Store(true)
				return // Fill zero value = FillNone: the hole stays open
			}
			res.Fills[i] = a.safeRecoverHole(rec, i)
		})
	}
	res.RecoverTime = time.Since(t1)

	// Merge the end-to-end profile from the per-flow steps and fills.
	mergeSteps(res)
	return res
}

// safeRecoverer builds the §5 recoverer with panic containment: if index
// construction crashes (hostile tokens), recovery is skipped for the whole
// thread — every hole stays a hole, which is degradation, not failure.
func (a *ThreadAnalyzer) safeRecoverer() (rec *Recoverer) {
	defer func() {
		if r := recover(); r != nil {
			a.ledger.Add(fault.Entry{
				Reason: fault.ReasonStageCrash, Thread: a.res.Thread, Core: -1,
				Detail: fmt.Sprintf("recoverer: %v", r),
			})
			rec = nil
		}
	}()
	return NewRecoverer(a.p.Matcher, a.res.Flows, a.p.Cfg.Recovery)
}

// safeRecoverHole fills one hole with panic containment: a crash leaves
// that hole unfilled and quarantines nothing else.
func (a *ThreadAnalyzer) safeRecoverHole(rec *Recoverer, i int) (fill Fill) {
	defer func() {
		if r := recover(); r != nil {
			a.ledger.Add(fault.Entry{
				Reason: fault.ReasonStageCrash, Thread: a.res.Thread, Core: -1,
				Detail: fmt.Sprintf("recover hole %d: %v", i, r),
			})
			fill = Fill{}
		}
	}()
	return rec.RecoverHole(i)
}

// mergeSteps assembles the thread's final profile from flows and fills.
func mergeSteps(res *ThreadResult) {
	total := 0
	for i, f := range res.Flows {
		total += f.Matched()
		if i < len(res.Fills) {
			total += len(res.Fills[i].Steps)
		}
	}
	res.Steps = make([]Step, 0, total)
	for i, f := range res.Flows {
		before := len(res.Steps)
		res.Steps = f.AppendSteps(res.Steps)
		res.DecodedSteps += len(res.Steps) - before
		if i < len(res.Fills) && res.Fills[i].Method != FillNone {
			res.Steps = append(res.Steps, res.Fills[i].Steps...)
			res.RecoveredSteps += len(res.Fills[i].Steps)
		}
	}
}
