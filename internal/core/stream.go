package core

import (
	"time"

	"jportal/internal/conc"
	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/ptdecode"
)

// ThreadAnalyzer is the resumable form of Pipeline.AnalyzeThread: one
// thread's stitched packet stream is fed in chunks, decoded and tokenized
// incrementally, and reconstructed in waves bounded by
// PipelineConfig.MaxPendingSegments, so the decoded-but-unreconstructed
// backlog — not the whole trace — is what stays in memory.
//
// Hole recovery deliberately runs only at Finish: the §5 recoverer indexes
// every flow of the thread as a candidate continuation sequence for every
// hole (an early segment can splice a late hole), so recovering before the
// stream ends would change fills. Wave boundaries, by contrast, are
// invisible: reconstruction is per-segment and order-preserving, so Finish
// returns byte-identical results to the batch call for any chunking and any
// cap.
type ThreadAnalyzer struct {
	p        *Pipeline
	snap     *meta.Snapshot
	dec      *ptdecode.Decoder
	tk       *tokenizer
	res      *ThreadResult
	pend     []*Segment
	finished bool
}

// NewThreadAnalyzer starts the analysis of one thread's stream.
func (p *Pipeline) NewThreadAnalyzer(thread int, snap *meta.Snapshot) *ThreadAnalyzer {
	return &ThreadAnalyzer{
		p:    p,
		snap: snap,
		dec:  ptdecode.New(snap),
		tk:   newTokenizer(p.Prog),
		res:  &ThreadResult{Thread: thread},
	}
}

// Feed analyses the next chunk of the thread's stitched stream. When the
// completed-segment backlog reaches MaxPendingSegments, it is reconstructed
// as a wave (fanning out to the configured workers) and released.
func (a *ThreadAnalyzer) Feed(items []pt.Item) {
	if a.finished {
		panic("core: ThreadAnalyzer.Feed after Finish")
	}
	t0 := time.Now()
	a.tk.feed(a.dec.DecodeChunk(items))
	a.pend = append(a.pend, a.tk.take()...)
	if cap := a.p.Cfg.MaxPendingSegments; cap > 0 && len(a.pend) >= cap {
		a.reconstruct()
	}
	a.res.DecodeTime += time.Since(t0)
}

// PendingSegments returns the decoded-but-unreconstructed backlog.
func (a *ThreadAnalyzer) PendingSegments() int { return len(a.pend) }

// reconstruct projects the pending segments onto the ICFG, appending their
// flows in segment order (slot-addressed, so identical for any worker
// count), and drops the segment references.
func (a *ThreadAnalyzer) reconstruct() {
	if len(a.pend) == 0 {
		return
	}
	base := len(a.res.Flows)
	a.res.Flows = append(a.res.Flows, make([]*SegmentFlow, len(a.pend))...)
	pend := a.pend
	conc.ParallelWork(a.p.Cfg.WorkerCount(), len(pend), a.p.Matcher.NewScratch,
		func(sc *MatchScratch, i int) {
			a.res.Flows[base+i] = a.p.Matcher.ReconstructSegmentScratch(sc, pend[i])
		})
	for i := range a.pend {
		a.pend[i] = nil
	}
	a.pend = a.pend[:0]
}

// Finish flushes the decoder and tokenizer, reconstructs the remaining
// segments, runs §5 hole recovery over the complete flow sequence, and
// merges the end-to-end profile — exactly AnalyzeThread's tail. Repeated
// calls return the same result.
func (a *ThreadAnalyzer) Finish() *ThreadResult {
	if a.finished {
		return a.res
	}
	a.finished = true
	res := a.res

	t0 := time.Now()
	a.tk.feed(a.dec.Flush())
	a.pend = append(a.pend, a.tk.finish()...)
	st := a.tk.st
	st.NativeDesyncs = a.dec.Desyncs
	res.Decode = st
	a.reconstruct()
	res.DecodeTime += time.Since(t0)

	t1 := time.Now()
	rec := NewRecoverer(a.p.Matcher, res.Flows, a.p.Cfg.Recovery)
	res.Fills = make([]Fill, len(res.Flows))
	conc.ParallelFor(a.p.Cfg.WorkerCount(), len(res.Flows)-1, func(i int) {
		res.Fills[i] = rec.RecoverHole(i)
	})
	res.RecoverTime = time.Since(t1)

	// Pre-size the merged profile from the per-flow matched counts.
	total := 0
	for i, f := range res.Flows {
		total += f.Matched()
		if i < len(res.Fills) {
			total += len(res.Fills[i].Steps)
		}
	}
	res.Steps = make([]Step, 0, total)
	for i, f := range res.Flows {
		steps := f.Steps()
		res.DecodedSteps += len(steps)
		res.Steps = append(res.Steps, steps...)
		if i < len(res.Fills) && res.Fills[i].Method != FillNone {
			res.Steps = append(res.Steps, res.Fills[i].Steps...)
			res.RecoveredSteps += len(res.Fills[i].Steps)
		}
	}
	return res
}
