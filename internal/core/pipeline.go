package core

import (
	"time"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
	"jportal/internal/conc"
	"jportal/internal/meta"
	"jportal/internal/pt"
)

// PipelineConfig configures the offline analysis.
type PipelineConfig struct {
	// ICFG options (whether dynamic call edges are statically resolved).
	ICFG cfg.Options
	// Recovery is the §5 configuration.
	Recovery RecoveryConfig
	// UseCallContext switches reconstruction to the PDA engine (an
	// extension; the paper uses the NFA).
	UseCallContext bool
	// Workers bounds the goroutines of each parallel stage of the offline
	// phase: per-thread analysis, per-segment reconstruction and per-hole
	// recovery all fan out to at most this many workers. 0 means
	// GOMAXPROCS. The reconstructed output is deterministic — identical
	// for every worker count.
	Workers int
}

// WorkerCount resolves the Workers knob (0 = GOMAXPROCS).
func (c PipelineConfig) WorkerCount() int { return conc.Workers(c.Workers) }

// DefaultPipelineConfig returns the production configuration.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		ICFG:     cfg.DefaultOptions(),
		Recovery: DefaultRecoveryConfig(),
	}
}

// Pipeline is the reusable offline analyser for one program: it owns the
// ICFG and matcher and processes per-thread packet streams.
type Pipeline struct {
	Prog    *bytecode.Program
	Matcher *Matcher
	Cfg     PipelineConfig
}

// NewPipeline builds the ICFG and matcher for prog.
func NewPipeline(prog *bytecode.Program, cfg PipelineConfig) *Pipeline {
	g := buildICFG(prog, cfg)
	m := NewMatcher(g)
	m.UseContext = cfg.UseCallContext
	return &Pipeline{Prog: prog, Matcher: m, Cfg: cfg}
}

func buildICFG(prog *bytecode.Program, pcfg PipelineConfig) *cfg.ICFG {
	return cfg.BuildICFG(prog, pcfg.ICFG)
}

// ThreadResult is the reconstructed control flow of one thread.
type ThreadResult struct {
	Thread int
	// Steps is the end-to-end control-flow profile: decoded steps plus
	// recovered steps, in execution order.
	Steps []Step

	Decode DecodeThreadStats
	// Flows are the per-segment projections (kept for diagnostics and
	// recovery ablations).
	Flows []*SegmentFlow
	// Fills describe each hole's recovery outcome; Fills[i] fills the
	// hole after Flows[i].
	Fills []Fill

	// Timing of the offline phases.
	DecodeTime  time.Duration
	RecoverTime time.Duration

	// RecoveredSteps counts steps contributed by recovery.
	RecoveredSteps int
	// DecodedSteps counts steps from captured data.
	DecodedSteps int
}

// AnalyzeThread runs decode, reconstruction and recovery for one thread's
// stitched packet stream. Segment reconstruction and hole recovery fan out
// to the configured worker count; results land in index-addressed slots, so
// the output is byte-identical to the serial pipeline regardless of
// scheduling.
func (p *Pipeline) AnalyzeThread(thread int, snap *meta.Snapshot, items []pt.Item) *ThreadResult {
	res := &ThreadResult{Thread: thread}
	workers := p.Cfg.WorkerCount()

	t0 := time.Now()
	segs, dstats := DecodeThread(p.Prog, snap, items)
	res.Decode = *dstats
	// Segments are independent projections over the read-only matcher:
	// reconstruct them concurrently, one MatchScratch per worker.
	res.Flows = make([]*SegmentFlow, len(segs))
	conc.ParallelWork(workers, len(segs), p.Matcher.NewScratch,
		func(sc *MatchScratch, i int) {
			res.Flows[i] = p.Matcher.ReconstructSegmentScratch(sc, segs[i])
		})
	res.DecodeTime = time.Since(t0)

	t1 := time.Now()
	rec := NewRecoverer(p.Matcher, res.Flows, p.Cfg.Recovery)
	res.Fills = make([]Fill, len(res.Flows))
	// Each hole's recovery walk stays ordered internally, but holes of
	// different flows are independent (the recoverer and its anchor index
	// are read-only after construction): fan them out too. Only recover
	// across genuine data loss (desync splits carry no missing execution
	// of meaningful length but are filled too — the walk reconnects them
	// cheaply).
	conc.ParallelFor(workers, len(res.Flows)-1, func(i int) {
		res.Fills[i] = rec.RecoverHole(i)
	})
	res.RecoverTime = time.Since(t1)

	// Pre-size the merged profile from the per-flow matched counts.
	total := 0
	for i, f := range res.Flows {
		total += f.Matched()
		if i < len(res.Fills) {
			total += len(res.Fills[i].Steps)
		}
	}
	res.Steps = make([]Step, 0, total)
	for i, f := range res.Flows {
		steps := f.Steps()
		res.DecodedSteps += len(steps)
		res.Steps = append(res.Steps, steps...)
		if i < len(res.Fills) && res.Fills[i].Method != FillNone {
			res.Steps = append(res.Steps, res.Fills[i].Steps...)
			res.RecoveredSteps += len(res.Fills[i].Steps)
		}
	}
	return res
}
