package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
	"jportal/internal/conc"
	"jportal/internal/meta"
	"jportal/internal/source"

	// Link in the reference Intel PT backend so the default trace source
	// resolves for every existing caller; alternate backends are selected
	// explicitly via PipelineConfig.Source.
	_ "jportal/internal/ptdecode"
)

// PipelineConfig configures the offline analysis.
type PipelineConfig struct {
	// Source is the trace source whose decoder interprets the packet
	// streams (nil = the registered default, Intel PT). The analysis
	// layers above the decoder are source-independent.
	Source source.Source
	// ICFG options (whether dynamic call edges are statically resolved).
	ICFG cfg.Options
	// Recovery is the §5 configuration.
	Recovery RecoveryConfig
	// UseCallContext switches reconstruction to the PDA engine (an
	// extension; the paper uses the NFA).
	UseCallContext bool
	// Workers bounds the goroutines of each parallel stage of the offline
	// phase: per-thread analysis, per-segment reconstruction and per-hole
	// recovery all fan out to at most this many workers. 0 means
	// GOMAXPROCS. The reconstructed output is deterministic — identical
	// for every worker count.
	Workers int
	// MaxPendingSegments caps how many decoded-but-unreconstructed
	// segments a ThreadAnalyzer buffers before reconstructing them as a
	// wave (0 = only at Finish, matching the batch pipeline). The cap
	// bounds streaming memory without changing output: waves preserve
	// segment order, and recovery always sees the complete flow sequence.
	MaxPendingSegments int
	// Pipelined runs the streaming Session's stages on their own
	// goroutines — one stitcher, WorkerCount() analyzer workers — connected
	// by single-producer single-consumer rings (DESIGN.md §12), so the
	// caller's Feed returns as soon as the chunk is enqueued and decode
	// overlaps collection. Output is byte-identical to the synchronous
	// session for every worker count and ring size. The knob is a
	// request: EffectivePipelined gates it on GOMAXPROCS >= 2, since the
	// rings only pay off when stages truly run in parallel.
	Pipelined bool
	// RingSize is the per-ring capacity in messages for the pipelined
	// session (0 = DefaultRingSize; rounded up to a power of two). Smaller
	// rings trade throughput for tighter in-flight memory; output is
	// unaffected.
	RingSize int
}

// DefaultRingSize is the pipelined session's ring capacity when RingSize
// is zero.
const DefaultRingSize = 256

// RingCapacity resolves the RingSize knob.
func (c PipelineConfig) RingCapacity() int {
	if c.RingSize > 0 {
		return c.RingSize
	}
	return DefaultRingSize
}

// WorkerCount resolves the Workers knob (0 = GOMAXPROCS).
func (c PipelineConfig) WorkerCount() int { return conc.Workers(c.Workers) }

// EffectivePipelined resolves the Pipelined knob: the ring-connected
// stages run only when the runtime can actually execute two stages at
// once (GOMAXPROCS >= 2). On a single-CPU runtime the stage goroutines
// just time-slice one core and every ring handoff is pure overhead —
// BENCH_6 recorded the h2 replay at 18.46 MB/s pipelined vs 19.51 MB/s
// synchronous — so the session falls back to the synchronous path there.
// Output is byte-identical either way (DESIGN.md §12).
func (c PipelineConfig) EffectivePipelined() bool {
	return c.Pipelined && runtime.GOMAXPROCS(0) >= 2
}

// Validate rejects nonsensical configurations up front, before they would
// surface as a hang, a panic, or a silently serial pipeline deep inside the
// offline phase.
func (c PipelineConfig) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers %d is negative (0 means GOMAXPROCS)", c.Workers)
	}
	if c.MaxPendingSegments < 0 {
		return fmt.Errorf("core: MaxPendingSegments %d is negative (0 means unbounded)", c.MaxPendingSegments)
	}
	if c.RingSize < 0 {
		return fmt.Errorf("core: RingSize %d is negative (0 means DefaultRingSize)", c.RingSize)
	}
	r := c.Recovery
	if r.AnchorLen < 0 || r.ConfirmLen < 0 || r.TopN < 0 ||
		r.MaxFillTokens < 0 || r.FallbackWalkMax < 0 {
		return fmt.Errorf("core: recovery bounds must be non-negative (anchor %d, confirm %d, topN %d, maxFill %d, walk %d)",
			r.AnchorLen, r.ConfirmLen, r.TopN, r.MaxFillTokens, r.FallbackWalkMax)
	}
	if math.IsNaN(r.TimeBudgetSlack) || r.TimeBudgetSlack < 0 {
		return fmt.Errorf("core: recovery TimeBudgetSlack %v must be a non-negative number", r.TimeBudgetSlack)
	}
	return nil
}

// DefaultPipelineConfig returns the production configuration.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		ICFG:     cfg.DefaultOptions(),
		Recovery: DefaultRecoveryConfig(),
	}
}

// Pipeline is the reusable offline analyser for one program: it owns the
// ICFG and matcher and processes per-thread packet streams.
type Pipeline struct {
	Prog    *bytecode.Program
	Matcher *Matcher
	Cfg     PipelineConfig

	// src is the resolved trace source (Cfg.Source or the default).
	src source.Source
}

// NewPipeline builds the ICFG and matcher for prog.
func NewPipeline(prog *bytecode.Program, cfg PipelineConfig) *Pipeline {
	g := buildICFG(prog, cfg)
	m := NewMatcher(g)
	m.UseContext = cfg.UseCallContext
	src := cfg.Source
	if src == nil {
		src = source.Default()
	}
	return &Pipeline{Prog: prog, Matcher: m, Cfg: cfg, src: src}
}

// Source returns the trace source this pipeline decodes with. Pipelines
// built as struct literals (tests) resolve the default here instead.
func (p *Pipeline) Source() source.Source {
	if p.src != nil {
		return p.src
	}
	if p.Cfg.Source != nil {
		return p.Cfg.Source
	}
	return source.Default()
}

func buildICFG(prog *bytecode.Program, pcfg PipelineConfig) *cfg.ICFG {
	return cfg.BuildICFG(prog, pcfg.ICFG)
}

// ThreadResult is the reconstructed control flow of one thread.
type ThreadResult struct {
	Thread int
	// Steps is the end-to-end control-flow profile: decoded steps plus
	// recovered steps, in execution order.
	Steps []Step

	Decode DecodeThreadStats
	// Flows are the per-segment projections (kept for diagnostics and
	// recovery ablations).
	Flows []*SegmentFlow
	// Fills describe each hole's recovery outcome; Fills[i] fills the
	// hole after Flows[i].
	Fills []Fill

	// Timing of the offline phases.
	DecodeTime  time.Duration
	RecoverTime time.Duration

	// RecoveredSteps counts steps contributed by recovery.
	RecoveredSteps int
	// DecodedSteps counts steps from captured data.
	DecodedSteps int
}

// AnalyzeThread runs decode, reconstruction and recovery for one thread's
// stitched packet stream. It is the batch form of ThreadAnalyzer — one Feed
// of the whole stream — so segment reconstruction and hole recovery fan out
// to the configured worker count with slot-addressed results, and the
// output is byte-identical to the serial pipeline regardless of scheduling
// or chunking.
func (p *Pipeline) AnalyzeThread(thread int, snap *meta.Snapshot, items []source.Item) *ThreadResult {
	a := p.NewThreadAnalyzer(thread, snap)
	a.Feed(items)
	return a.Finish()
}
