package core

import (
	"jportal/internal/cfg"
)

// Context-sensitive (PDA) matching — the alternative formulation the paper
// discusses and sets aside in §4 ("Another way to model an ICFG is to use
// the pushdown automaton"). The NFA connects every return to every
// compatible return site; the PDA threads a call stack through matching so
// a return goes back to the caller that actually made the call. Because a
// hardware trace can begin mid-execution, the stack may have an unknown
// prefix: a return on an empty stack falls back to the NFA's behaviour.
//
// This is implemented as an optional engine (MatchFromContext) so the
// ablation benchmarks can quantify the precision/cost trade the paper
// alludes to.

// stackNode is an immutable linked call stack; tails are shared between
// states so pushing is O(1).
type stackNode struct {
	ret   cfg.NodeID
	next  *stackNode
	depth int32
}

func push(s *stackNode, ret cfg.NodeID) *stackNode {
	d := int32(1)
	if s != nil {
		d = s.depth + 1
	}
	return &stackNode{ret: ret, next: s, depth: d}
}

// pdaEntry is one PDA configuration: an ICFG node plus a call stack.
type pdaEntry struct {
	node   cfg.NodeID
	stack  *stackNode
	parent int32
}

// pdaKey approximates configuration identity for deduplication: the node,
// the top-of-stack and the depth. Two configurations agreeing on all three
// almost always share the whole stack in practice (tails are built from the
// same prefix states).
type pdaKey struct {
	node  cfg.NodeID
	top   cfg.NodeID
	depth int32
}

// MaxStackDepth bounds tracked call context; deeper frames degrade to the
// NFA's context-insensitive behaviour (the unknown-prefix rule).
const MaxStackDepth = 64

// MatchFromContext is MatchFrom with call-context tracking: calls push
// their return site, returns pop and must go exactly there. It returns the
// same MatchResult shape; Fallbacks additionally counts empty-stack
// returns.
func (m *Matcher) MatchFromContext(starts []cfg.NodeID, toks []Token) MatchResult {
	if len(toks) == 0 {
		return MatchResult{Complete: true}
	}
	var res MatchResult
	layer := make([]pdaEntry, 0, len(starts))
	for _, s := range starts {
		if m.tokenMatchesNode(&toks[0], s) {
			layer = append(layer, pdaEntry{node: s, parent: -1})
		}
		if len(layer) >= m.MaxStates {
			break
		}
	}
	if len(layer) == 0 {
		return res
	}
	layers := make([][]pdaEntry, 1, len(toks))
	layers[0] = layer

	var buf []cfg.NodeID
	for i := 0; i+1 < len(toks); i++ {
		cur := layers[i]
		next := make([]pdaEntry, 0, len(cur))
		seen := make(map[pdaKey]bool, len(cur))
		tok := &toks[i]
		ntok := &toks[i+1]
		for pi := range cur {
			e := &cur[pi]
			ins := m.G.Instr(e.node)
			emit := func(n cfg.NodeID, st *stackNode) {
				k := pdaKey{node: n, top: cfg.NoNode}
				if st != nil {
					k.top = st.ret
					k.depth = st.depth
				}
				if !seen[k] && m.tokenMatchesNode(ntok, n) {
					seen[k] = true
					next = append(next, pdaEntry{node: n, stack: st, parent: int32(pi)})
				}
			}
			switch {
			case ins.Op.IsCall():
				// Push the return site, bounded.
				st := e.stack
				mid, pc := m.G.Location(e.node)
				meth := m.G.Prog.Methods[mid]
				if pc+1 < int32(len(meth.Code)) && (st == nil || st.depth < MaxStackDepth) {
					st = push(st, m.G.Node(mid, pc+1))
				}
				succs, fb := m.successors(e.node, tok, buf[:0])
				buf = succs
				if fb {
					res.Fallbacks++
				}
				for _, sc := range succs {
					emit(sc, st)
				}
			case ins.Op.IsReturn():
				if e.stack != nil {
					// Precise: return exactly to the caller.
					emit(e.stack.ret, e.stack.next)
				} else {
					// Unknown stack prefix: the NFA behaviour.
					res.Fallbacks++
					succs, _ := m.successors(e.node, tok, buf[:0])
					buf = succs
					for _, sc := range succs {
						emit(sc, nil)
					}
				}
			default:
				succs, fb := m.successors(e.node, tok, buf[:0])
				buf = succs
				if fb {
					res.Fallbacks++
				}
				for _, sc := range succs {
					emit(sc, e.stack)
				}
			}
			if len(next) >= m.MaxStates {
				break
			}
		}
		if len(next) == 0 {
			if ntok.Located() {
				res.Reanchors++
				next = append(next, pdaEntry{node: m.G.Node(ntok.Method, ntok.PC), parent: -1})
			} else {
				break
			}
		}
		layers = append(layers, next)
	}

	final := layers[len(layers)-1]
	best := 0
	for i := 1; i < len(final); i++ {
		if final[i].node < final[best].node {
			best = i
		}
	}
	path := make([]cfg.NodeID, len(layers))
	idx := int32(best)
	for li := len(layers) - 1; li >= 0; li-- {
		e := layers[li][idx]
		path[li] = e.node
		idx = e.parent
		if idx < 0 && li > 0 {
			for lj := li - 1; lj >= 0; lj-- {
				b := 0
				for i := 1; i < len(layers[lj]); i++ {
					if layers[lj][i].node < layers[lj][b].node {
						b = i
					}
				}
				path[lj] = layers[lj][b].node
			}
			break
		}
	}
	res.Path = path
	res.Matched = len(layers)
	res.Complete = res.Matched == len(toks)
	return res
}
