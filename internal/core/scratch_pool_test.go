package core

import (
	"sync"
	"testing"

	"jportal/internal/cfg"
)

func poolTestMatcher(t *testing.T) (*Matcher, []Token, []cfg.NodeID) {
	t.Helper()
	_, m := fig2Matcher(t)
	toks := fig2ElseTrace()
	return m, toks, m.NodesWithOp(toks[0].Op)
}

// TestNewScratchIsCallerOwned: scratch from NewScratch must never enter
// the matcher's pool — putScratch has to ignore it, or a caller holding
// the scratch would share it with whatever pooled path Gets it next.
func TestNewScratchIsCallerOwned(t *testing.T) {
	m, _, _ := poolTestMatcher(t)
	ns := m.NewScratch()
	m.putScratch(ns) // must be a no-op
	if got := m.getScratch(); got == ns {
		t.Fatal("NewScratch scratch entered the pool via putScratch")
	}
}

// TestPutScratchDoublePut: a second putScratch of the same scratch must
// be a no-op. If it were not, the pool would hold the scratch twice and
// hand it to two goroutines simultaneously.
func TestPutScratchDoublePut(t *testing.T) {
	m, _, _ := poolTestMatcher(t)
	sc := m.getScratch()
	m.putScratch(sc)
	m.putScratch(sc) // double Put: must not re-enter the pool
	a := m.getScratch()
	b := m.getScratch()
	if a == b {
		t.Fatal("double putScratch produced the same scratch from two Gets")
	}
	m.putScratch(a)
	m.putScratch(b)
	if m.putScratch(nil); false {
		t.Fatal("unreachable")
	}
}

// TestScratchPoolRace races pooled matching (getScratch/putScratch via
// MatchFrom), caller-owned scratch, and deliberate double Puts across
// goroutines. Run under -race: before the poolable guard, the double
// Puts let two goroutines mark the same seen[] concurrently and the race
// detector fires.
func TestScratchPoolRace(t *testing.T) {
	m, toks, starts := poolTestMatcher(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := m.NewScratch()
			for i := 0; i < 500; i++ {
				switch i % 3 {
				case 0: // pooled path
					if r := m.MatchFrom(starts, toks); !r.Complete {
						t.Errorf("pooled match failed at %d", r.Matched)
						return
					}
				case 1: // caller-owned scratch + spurious Put
					if r := m.MatchFromScratch(own, starts, toks); !r.Complete {
						t.Errorf("owned match failed at %d", r.Matched)
						return
					}
					m.putScratch(own) // must be ignored
				case 2: // explicit get/put with a double Put
					sc := m.getScratch()
					if r := m.MatchFromScratch(sc, starts, toks); !r.Complete {
						t.Errorf("explicit match failed at %d", r.Matched)
						return
					}
					m.putScratch(sc)
					m.putScratch(sc) // double Put: must be a no-op
				}
			}
		}(g)
	}
	wg.Wait()
}
