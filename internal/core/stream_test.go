package core

import (
	"math"
	"reflect"
	"testing"
)

// TestTokenizerChunkInvariant feeds the mixed event fixture (templates,
// TNT pairing, a gap, a JIT range, a desync) through the streaming
// tokenizer at every possible split point, and one event at a time: the
// segments and stats must match the batch call exactly. The interesting
// cuts are the ones that separate a conditional dispatch from its TNT and
// a gap from the segment it opens.
func TestTokenizerChunkInvariant(t *testing.T) {
	events, prog, _ := mkEvents()
	wantSegs, wantSt := TokenizeEvents(prog, events)

	check := func(name string, feed func(tk *tokenizer) []*Segment) {
		tk := newTokenizer(prog)
		var segs []*Segment
		segs = append(segs, feed(tk)...)
		segs = append(segs, tk.finish()...)
		if !reflect.DeepEqual(segs, wantSegs) {
			t.Errorf("%s: segments diverge from batch", name)
		}
		if tk.st != *wantSt {
			t.Errorf("%s: stats = %+v, want %+v", name, tk.st, *wantSt)
		}
	}

	for cut := 0; cut <= len(events); cut++ {
		check("cut", func(tk *tokenizer) []*Segment {
			tk.feed(events[:cut])
			// take's harvest buffer is reused across feeds, so the result
			// must be copied before feeding the rest.
			segs := append([]*Segment(nil), tk.take()...)
			tk.feed(events[cut:])
			return append(segs, tk.take()...)
		})
	}
	check("one-at-a-time", func(tk *tokenizer) []*Segment {
		var segs []*Segment
		for i := range events {
			tk.feed(events[i : i+1])
			segs = append(segs, tk.take()...)
		}
		return segs
	})
}

// TestThreadAnalyzerFinishIdempotent: Finish is the terminal state; a
// second call returns the same result and Feed panics.
func TestThreadAnalyzerFinishIdempotent(t *testing.T) {
	prog, m := fig2Matcher(t)
	p := &Pipeline{Prog: prog, Matcher: m, Cfg: DefaultPipelineConfig()}
	a := p.NewThreadAnalyzer(0, nil)
	a.Feed(nil)
	res := a.Finish()
	if res2 := a.Finish(); res2 != res {
		t.Fatal("second Finish returned a different result")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Feed after Finish did not panic")
		}
	}()
	a.Feed(nil)
}

func TestPipelineConfigValidate(t *testing.T) {
	if err := DefaultPipelineConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*PipelineConfig){
		func(c *PipelineConfig) { c.Workers = -1 },
		func(c *PipelineConfig) { c.MaxPendingSegments = -4 },
		func(c *PipelineConfig) { c.Recovery.AnchorLen = -1 },
		func(c *PipelineConfig) { c.Recovery.TopN = -2 },
		func(c *PipelineConfig) { c.Recovery.TimeBudgetSlack = -0.5 },
		func(c *PipelineConfig) { c.Recovery.TimeBudgetSlack = math.NaN() },
	}
	for i, mut := range bad {
		c := DefaultPipelineConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
