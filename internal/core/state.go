package core

import (
	"time"

	"jportal/internal/source"
)

// TokenizerState is the tokenizer's checkpointable lowering state: the
// open segment, the gap awaiting attachment, the clock, and the pending
// conditional dispatch. Only valid between Feed calls, after take() — the
// completed-segment list must be empty (harvested into the analyzer's
// backlog), which ThreadAnalyzer.Feed guarantees.
type TokenizerState struct {
	Stats       DecodeThreadStats
	Cur         *Segment
	PendingGap  *GapInfo
	TSC         uint64
	PendingCond int
}

// exportState deep-copies the tokenizer's state (the live tokenizer keeps
// appending to its open segment after the snapshot).
func (t *tokenizer) exportState() TokenizerState {
	if len(t.segs) != 0 {
		panic("core: tokenizer export with unharvested segments")
	}
	st := TokenizerState{
		Stats:       t.st,
		TSC:         t.tsc,
		PendingCond: t.pendingCond,
	}
	if len(t.cur.Tokens) > 0 || t.cur.GapBefore != nil {
		st.Cur = &Segment{
			Tokens:    append([]Token(nil), t.cur.Tokens...),
			GapBefore: t.cur.GapBefore,
		}
	}
	if t.pendingGap != nil {
		g := *t.pendingGap
		st.PendingGap = &g
	}
	return st
}

// restoreState rebuilds the tokenizer from a checkpointed state. A nil Cur
// (gob's encoding of a pointer to a zero struct, or an export taken with
// an empty open segment) is normalised back to a fresh Segment.
func (t *tokenizer) restoreState(st TokenizerState) {
	t.st = st.Stats
	t.segs = nil
	// Adopt the checkpointed open segment into the token arena: the
	// restored tokens are copied to the head of a fresh open span so the
	// appendTok slab invariant (cur.Tokens == slab[segStart:len(slab)])
	// holds again.
	t.segStart = len(t.slab)
	t.cur = t.newSeg()
	t.curLocated = 0
	if st.Cur != nil {
		t.cur.GapBefore = st.Cur.GapBefore
		if n := len(st.Cur.Tokens); n > 0 {
			if len(t.slab)+n > cap(t.slab) {
				t.growSlab(n)
			}
			t.slab = append(t.slab, st.Cur.Tokens...)
			t.cur.Tokens = t.slab[t.segStart:len(t.slab):len(t.slab)]
			for i := range t.cur.Tokens {
				if t.cur.Tokens[i].Located() {
					t.curLocated++
				}
			}
		}
	}
	t.pendingGap = st.PendingGap
	t.tsc = st.TSC
	t.pendingCond = st.PendingCond
}

// ThreadAnalyzerState is one thread's checkpointable analysis state
// (DESIGN.md §11): decoder walking state, tokenizer lowering state, the
// decoded-but-unreconstructed backlog, the flows already reconstructed,
// and the fault-harvest watermarks. Only valid at quiescence — between
// Session drains, outside any wave — and only before Finish.
type ThreadAnalyzerState struct {
	Thread     int
	Decoder    source.WalkerState
	Tokenizer  TokenizerState
	Pend       []*Segment
	Flows      []*SegmentFlow
	DecodeTime time.Duration
	SegsSeen   uint64

	SeenFaults  int
	SeenSkipped uint64
	SeenDesyncs int
	SeenRegress int

	CarriedDesyncs  int
	CarriedFaults   int
	CarriedSkipPkts int
	CarriedSkipByte uint64
}

// ExportState snapshots the analyzer for a checkpoint. It panics after
// Finish: a finished thread is a result, not resumable state.
func (a *ThreadAnalyzer) ExportState() ThreadAnalyzerState {
	if a.finished {
		panic("core: ThreadAnalyzer.ExportState after Finish")
	}
	return ThreadAnalyzerState{
		Thread:     a.res.Thread,
		Decoder:    a.dec.ExportState(),
		Tokenizer:  a.tk.exportState(),
		Pend:       append([]*Segment(nil), a.pend...),
		Flows:      append([]*SegmentFlow(nil), a.res.Flows...),
		DecodeTime: a.res.DecodeTime,
		SegsSeen:   a.segsSeen,

		SeenFaults:  a.seenFaults,
		SeenSkipped: a.seenSkipped,
		SeenDesyncs: a.seenDesyncs,
		SeenRegress: a.seenRegress,

		CarriedDesyncs:  a.carriedDesyncs,
		CarriedFaults:   a.carriedFaults,
		CarriedSkipPkts: a.carriedSkipPkts,
		CarriedSkipByte: a.carriedSkipByte,
	}
}

// RestoreState rebuilds a freshly-constructed analyzer from a checkpointed
// state. Flows crossed the checkpoint without their unexported ICFG
// reference (gob skips it), so each one is reattached to this pipeline's
// graph; segment abstraction caches rebuild lazily on first use.
func (a *ThreadAnalyzer) RestoreState(st ThreadAnalyzerState) error {
	if err := a.dec.RestoreState(st.Decoder); err != nil {
		return err
	}
	a.tk.restoreState(st.Tokenizer)
	a.pend = append([]*Segment(nil), st.Pend...)
	a.res.Thread = st.Thread
	a.res.Flows = append([]*SegmentFlow(nil), st.Flows...)
	for _, f := range a.res.Flows {
		if f != nil {
			f.g = a.p.Matcher.G
		}
	}
	a.res.DecodeTime = st.DecodeTime
	a.segsSeen = st.SegsSeen

	a.seenFaults = st.SeenFaults
	a.seenSkipped = st.SeenSkipped
	a.seenDesyncs = st.SeenDesyncs
	a.seenRegress = st.SeenRegress

	a.carriedDesyncs = st.CarriedDesyncs
	a.carriedFaults = st.CarriedFaults
	a.carriedSkipPkts = st.CarriedSkipPkts
	a.carriedSkipByte = st.CarriedSkipByte
	return nil
}
