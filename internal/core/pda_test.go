package core

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
)

// twoCallersSrc has two call sites of the same callee whose continuations
// execute *different* instructions, so a context-insensitive NFA can route
// the return to the wrong site while the PDA cannot.
const twoCallersSrc = `
method T.callee(1) returns int {
    iload 0
    ireturn
}

method T.a(0) returns int {
    iconst 1
    invokestatic T.callee
    iconst 5
    iadd
    ireturn
}

method T.b(0) returns int {
    iconst 2
    invokestatic T.callee
    iconst 7
    imul
    ireturn
}

method T.main(0) {
    invokestatic T.a
    pop
    invokestatic T.b
    pop
    return
}
entry T.main
`

func pdaMatcher(t *testing.T) (*bytecode.Program, *Matcher) {
	t.Helper()
	p := bytecode.MustAssemble(twoCallersSrc)
	return p, NewMatcher(cfg.BuildICFG(p, cfg.DefaultOptions()))
}

// traceThroughA is the interp token trace of T.a's body including the call.
func traceThroughA() []Token {
	return []Token{
		tok(bytecode.ICONST),       // a@0
		tok(bytecode.INVOKESTATIC), // a@1
		tok(bytecode.ILOAD),        // callee@0
		tok(bytecode.IRETURN),      // callee@1
		tok(bytecode.ICONST),       // a@2  <- the return must land here
		tok(bytecode.IADD),         // a@3  <- iadd disambiguates from b's imul
		tok(bytecode.IRETURN),      // a@4
	}
}

func TestPDAMatchesPreciseReturn(t *testing.T) {
	p, m := pdaMatcher(t)
	toks := traceThroughA()
	res := m.MatchFromContext(m.NodesWithOp(toks[0].Op), toks)
	if !res.Complete {
		t.Fatalf("PDA rejected valid trace at %d", res.Matched)
	}
	a := p.MethodByName("T.a")
	mid, pc := m.G.Location(res.Path[4])
	if mid != a.ID || pc != 2 {
		t.Errorf("return landed at m%d@%d, want a@2", mid, pc)
	}
}

func TestPDARejectsCrossContextReturn(t *testing.T) {
	_, m := pdaMatcher(t)
	// A trace that calls from a's site but continues with b's
	// continuation (imul): feasible for the NFA, infeasible for the PDA.
	toks := []Token{
		tok(bytecode.ICONST),       // a@0 (or b@0 — ambiguous prefix)
		tok(bytecode.INVOKESTATIC), // the call
		tok(bytecode.ILOAD),
		tok(bytecode.IRETURN),
		tok(bytecode.ICONST),
		tok(bytecode.IADD), // a's continuation
		tok(bytecode.IRETURN),
		// Then impossible: another IMUL continuation without a call.
	}
	// First confirm both engines accept the valid version.
	if r := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks); !r.Complete {
		t.Fatal("NFA rejected the valid trace")
	}
	if r := m.MatchFromContext(m.NodesWithOp(toks[0].Op), toks); !r.Complete {
		t.Fatal("PDA rejected the valid trace")
	}

	// The crossed trace: call made at a@1 (established by the iconst 1 /
	// iadd context) but returning into b's imul continuation.
	crossed := []Token{
		tok(bytecode.ICONST),
		tok(bytecode.INVOKESTATIC),
		tok(bytecode.ILOAD),
		tok(bytecode.IRETURN),
		tok(bytecode.ICONST),
		tok(bytecode.IMUL), // b's continuation
		tok(bytecode.IRETURN),
		tok(bytecode.POP), // and back in main after b? (main@3)
		tok(bytecode.RETURN),
	}
	nfa := m.MatchFrom(m.NodesWithOp(crossed[0].Op), crossed)
	pda := m.MatchFromContext(m.NodesWithOp(crossed[0].Op), crossed)
	// The NFA accepts (it cannot distinguish the callers); the PDA must
	// match strictly less. Note the crossed trace IS consistent with
	// having started in b (stack prefix unknown) up to the POP/RETURN
	// suffix, which requires main's context after b's return.
	if pda.Matched > nfa.Matched {
		t.Errorf("PDA matched more (%d) than NFA (%d)?", pda.Matched, nfa.Matched)
	}
}

func TestPDAEmptyStackFallsBackToNFA(t *testing.T) {
	p, m := pdaMatcher(t)
	// Trace starting INSIDE the callee (mid-execution): the return's
	// caller is unknown, so the PDA must consider all return sites.
	toks := []Token{
		tok(bytecode.ILOAD),   // callee@0
		tok(bytecode.IRETURN), // callee@1
		tok(bytecode.ICONST),  // some continuation
		tok(bytecode.IMUL),    // b's
		tok(bytecode.IRETURN),
	}
	res := m.MatchFromContext(m.NodesWithOp(toks[0].Op), toks)
	if !res.Complete {
		t.Fatalf("PDA with unknown prefix rejected trace at %d", res.Matched)
	}
	if res.Fallbacks == 0 {
		t.Error("empty-stack return should count as fallback")
	}
	b := p.MethodByName("T.b")
	mid, pc := m.G.Location(res.Path[2])
	if mid != b.ID || pc != 2 {
		t.Errorf("continuation at m%d@%d, want b@2", mid, pc)
	}
}

func TestPDAAgreesWithNFAOnFig2(t *testing.T) {
	_, m := fig2Matcher(t)
	toks := fig2ElseTrace()
	nfa := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks)
	pda := m.MatchFromContext(m.NodesWithOp(toks[0].Op), toks)
	if !nfa.Complete || !pda.Complete {
		t.Fatalf("engines disagree on acceptance: nfa=%v pda=%v", nfa.Complete, pda.Complete)
	}
	for i := range nfa.Path {
		if nfa.Path[i] != pda.Path[i] {
			t.Fatalf("paths diverge at %d (intraprocedural trace)", i)
		}
	}
}

func TestPDARecursionDepthBounded(t *testing.T) {
	src := `
method T.rec(1) returns int {
    iload 0
    ifeq Lbase
    iload 0
    iconst 1
    isub
    invokestatic T.rec
    ireturn
Lbase:
    iconst 0
    ireturn
}
method T.main(0) {
    iconst 200
    invokestatic T.rec
    pop
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	m := NewMatcher(cfg.BuildICFG(p, cfg.DefaultOptions()))
	// Build a deep recursive trace (past MaxStackDepth).
	var toks []Token
	depth := MaxStackDepth + 40
	for i := 0; i < depth; i++ {
		toks = append(toks,
			tok(bytecode.ILOAD), dtok(bytecode.IFNE, false), // wrong op? rec uses ifeq
		)
	}
	// Simpler: just check the matcher does not blow up on the real
	// program's own reconstruction path with deep recursion.
	toks = toks[:0]
	for i := 0; i < depth; i++ {
		toks = append(toks,
			tok(bytecode.ILOAD), dtok(bytecode.IFEQ, false),
			tok(bytecode.ILOAD), tok(bytecode.ICONST), tok(bytecode.ISUB),
			tok(bytecode.INVOKESTATIC),
		)
	}
	toks = append(toks, tok(bytecode.ILOAD), dtok(bytecode.IFEQ, true),
		tok(bytecode.ICONST), tok(bytecode.IRETURN))
	for i := 0; i < depth; i++ {
		toks = append(toks, tok(bytecode.IRETURN))
	}
	res := m.MatchFromContext(m.NodesWithOp(toks[0].Op), toks)
	if res.Matched < len(toks)-MaxStackDepth {
		t.Errorf("deep recursion matched only %d of %d", res.Matched, len(toks))
	}
}
