package core

import (
	"jportal/internal/bytecode"
	"jportal/internal/cfg"
)

// Step is one reconstructed control-flow step: the bytecode instruction at
// (Method, PC) executed.
type Step struct {
	Method bytecode.MethodID
	PC     int32
	TSC    uint64
	// Recovered marks steps synthesised by the data-recovery phase (§5)
	// rather than decoded from captured trace data.
	Recovered bool
}

// SegmentFlow is a reconstructed segment: the projection of its tokens onto
// the ICFG.
type SegmentFlow struct {
	Seg *Segment
	// Nodes is parallel to Seg.Tokens; cfg.NoNode marks unprojected
	// tokens.
	Nodes []cfg.NodeID
	// Runs counts maximal matched runs (1 when the whole segment
	// projected in one piece).
	Runs int
	// Skipped counts tokens no projection was found for.
	Skipped int
	// Reanchors and Fallbacks aggregate the matcher diagnostics.
	Reanchors int
	Fallbacks int
	// Quarantined marks a flow whose reconstruction was abandoned (the
	// matcher crashed on untrusted tokens, typically stale or hostile JIT
	// metadata): it contributes no steps, and §5 recovery neither indexes
	// it as a candidate nor anchors holes on it.
	Quarantined bool

	g *cfg.ICFG
}

// quarantinedFlow builds the empty projection recorded for a segment whose
// reconstruction crashed: every token skipped, nothing projected.
func quarantinedFlow(seg *Segment, g *cfg.ICFG) *SegmentFlow {
	f := &SegmentFlow{Seg: seg, Nodes: make([]cfg.NodeID, len(seg.Tokens)),
		Skipped: len(seg.Tokens), Quarantined: true, g: g}
	for i := range f.Nodes {
		f.Nodes[i] = cfg.NoNode
	}
	return f
}

// Matched counts the projected tokens (the length of Steps without
// materialising it).
func (f *SegmentFlow) Matched() int { return len(f.Nodes) - f.Skipped }

// Steps materialises the segment's steps (matched tokens only).
func (f *SegmentFlow) Steps() []Step {
	return f.AppendSteps(make([]Step, 0, f.Matched()))
}

// AppendSteps appends the segment's steps (matched tokens only) to dst —
// the allocation-free form of Steps for callers assembling a profile.
func (f *SegmentFlow) AppendSteps(dst []Step) []Step {
	for i, n := range f.Nodes {
		if n == cfg.NoNode {
			continue
		}
		mid, pc := f.g.Location(n)
		dst = append(dst, Step{Method: mid, PC: pc, TSC: f.Seg.Tokens[i].TSC})
	}
	return dst
}

// ReconstructSegment projects one segment onto the ICFG (§4): it matches
// maximal runs of tokens starting from the candidate states of the first
// unmatched token, restarting after hard mismatches the way the paper's
// reconstruction resumes from a fresh starting point.
func (m *Matcher) ReconstructSegment(seg *Segment) *SegmentFlow {
	sc := m.getScratch()
	defer m.putScratch(sc)
	return m.ReconstructSegmentScratch(sc, seg)
}

// ReconstructSegmentScratch is ReconstructSegment with caller-provided
// scratch, the per-worker entry point of the parallel pipeline: segments
// are independent, the matcher is read-only, so one worker per scratch can
// reconstruct different segments of a thread concurrently.
func (m *Matcher) ReconstructSegmentScratch(sc *MatchScratch, seg *Segment) *SegmentFlow {
	f := &SegmentFlow{Seg: seg, Nodes: make([]cfg.NodeID, len(seg.Tokens)), g: m.G}
	for i := range f.Nodes {
		f.Nodes[i] = cfg.NoNode
	}
	toks := seg.Tokens
	i := 0
	for i < len(toks) {
		starts := m.candidateStarts(&toks[i])
		var r MatchResult
		if m.UseContext {
			r = m.MatchFromContext(starts, toks[i:])
		} else {
			r = m.MatchFromScratch(sc, starts, toks[i:])
		}
		if r.Matched == 0 {
			f.Skipped++
			i++
			continue
		}
		copy(f.Nodes[i:], r.Path)
		f.Runs++
		f.Reanchors += r.Reanchors
		f.Fallbacks += r.Fallbacks
		i += r.Matched
	}
	return f
}
