package scrub

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"jportal"
	"jportal/internal/ingest"
	"jportal/internal/metrics"
	"jportal/internal/streamfmt"
)

// rec builders for hand-crafted streams (compaction is structural, so the
// payloads only need to frame correctly).

func blobRec(payload []byte) []byte {
	out := []byte{streamfmt.TagBlob}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

func watermarkRec(core uint32, mark uint64) []byte {
	out := []byte{streamfmt.TagWatermark}
	out = binary.LittleEndian.AppendUint32(out, core)
	return binary.LittleEndian.AppendUint64(out, mark)
}

func sealRec(crc uint32) []byte {
	out := []byte{streamfmt.TagSeal}
	return binary.LittleEndian.AppendUint32(out, crc)
}

// sealStream appends a correct seal over header+records.
func sealStream(header []byte, records ...[]byte) []byte {
	out := append([]byte(nil), header...)
	for _, r := range records {
		out = append(out, r...)
	}
	return append(out, sealRec(crc32.ChecksumIEEE(out))...)
}

func TestCompactCleanArchiveIsByteIdenticalNoOp(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 2, 8)
	dir := writeSession(t, dataDir, "clean", testProgramGob(t), stream, 0, 0, false)

	cs, err := CompactArchive(dir, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Rewritten || cs.DroppedRecords != 0 {
		t.Fatalf("clean archive rewritten: %+v", cs)
	}
	if got := streamBytes(t, dir); !bytes.Equal(got, stream) {
		t.Fatal("clean archive bytes changed")
	}
	if cs.BytesAfter != cs.BytesBefore {
		t.Fatalf("BytesAfter %d != BytesBefore %d on no-op", cs.BytesAfter, cs.BytesBefore)
	}
}

func TestCompactDropsDuplicatesAndReseals(t *testing.T) {
	dataDir := t.TempDir()
	header := streamfmt.AppendHeader(nil, 1)
	blob := blobRec([]byte("meta-blob-A"))
	w100 := watermarkRec(0, 100)
	stream := sealStream(header,
		blob,
		blob,               // duplicate blob: dropped
		w100,
		watermarkRec(0, 100), // non-advancing watermark: dropped
		watermarkRec(0, 250),
	)
	img := append(append([]byte(nil), stream...), 0xAA, 0xBB) // trailing junk: dropped
	dir := writeSession(t, dataDir, "dups", testProgramGob(t), img, 0, 0, false)
	// A stale frontier rides along; compaction must rewrite it too.
	pre := ingest.SessionState{Seq: 7, Size: int64(len(img)), CRC: 0xDEAD, Sealed: true}
	if err := ingest.WriteSessionState(dir, pre); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	cs, err := CompactArchive(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Rewritten || cs.DroppedRecords != 3 {
		t.Fatalf("stats = %+v, want rewritten with 3 drops", cs)
	}
	want := sealStream(header, blob, w100, watermarkRec(0, 250))
	got := streamBytes(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatalf("compacted stream is %d bytes, want %d", len(got), len(want))
	}
	if v := walkStream(got, false, ingest.SessionState{}); v.damage != damageNone || v.sealEnd != int64(len(got)) {
		t.Fatalf("compacted stream fails verification: %+v", v)
	}
	st, err := ingest.ReadSessionState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len(want)) || !st.Sealed || st.Seq != 7 {
		t.Fatalf("frontier after compaction: %+v", st)
	}
	if st.CRC != crc32.ChecksumIEEE(want[:len(want)-5]) {
		t.Fatal("frontier CRC not rewritten to the compacted pre-seal checksum")
	}
	snap := reg.Snapshot()
	if snap[metrics.CounterCompactionRewritten] != 1 || snap[metrics.CounterCompactionDropped] != 3 {
		t.Fatalf("compaction counters: %v", snap)
	}

	// Idempotence: compacting the compacted archive is a no-op.
	cs2, err := CompactArchive(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Rewritten || cs2.DroppedRecords != 0 {
		t.Fatalf("second compaction not a no-op: %+v", cs2)
	}
	if again := streamBytes(t, dir); !bytes.Equal(again, want) {
		t.Fatal("second compaction changed bytes")
	}
}

func TestCompactRefusesUnsealed(t *testing.T) {
	dataDir := t.TempDir()
	full := buildStream(t, 1, 4)
	dir := writeSession(t, dataDir, "open", testProgramGob(t), full[:len(full)-5], 0, 0, false)
	if _, err := CompactArchive(dir, metrics.NewRegistry()); err != ErrNotSealed {
		t.Fatalf("err = %v, want ErrNotSealed", err)
	}
}

func TestCompactRefusesCorrupt(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 1, 4)
	img := append([]byte(nil), stream...)
	img[streamfmt.HeaderLen] ^= 0xFF
	dir := writeSession(t, dataDir, "rot", testProgramGob(t), img, 0, 0, false)
	if _, err := CompactArchive(dir, metrics.NewRegistry()); err == nil {
		t.Fatal("compaction accepted a corrupt stream")
	}
	if got, _ := os.ReadFile(filepath.Join(dir, jportal.StreamFileName)); !bytes.Equal(got, img) {
		t.Fatal("failed compaction modified the file")
	}
}
