package scrub

import (
	"testing"

	"jportal/internal/streamfmt"
)

// TestDiskSweepDeterministic pins the chaos -disk acceptance invariant:
// for a fixed seed the sweep table is byte-identical run to run, and at
// rate 0 (no faults) every upload completes and every final archive is
// byte-identical to the source.
func TestDiskSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("spins fault-injected ingest servers")
	}
	srcData := t.TempDir()
	stream := buildStream(t, 2, 200)
	archiveDir := writeSession(t, srcData, "src", testProgramGob(t), stream, 0, 0, false)
	if frames, err := sweepFrames(stream[streamfmt.HeaderLen:]); err != nil || len(frames) < 2 {
		t.Fatalf("sweep archive too small: %d frames, %v", len(frames), err)
	}

	cfg := DiskSweepConfig{
		ArchiveDir: archiveDir,
		Seed:       42,
		Rates:      []float64{0, 1},
		Sessions:   1,
	}
	rows1, err := DiskSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := DiskSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1 := FormatDiskSweep("test", cfg.Seed, rows1)
	t2 := FormatDiskSweep("test", cfg.Seed, rows2)
	if t1 != t2 {
		t.Fatalf("sweep table differs across runs with the same seed:\n--- run 1\n%s--- run 2\n%s", t1, t2)
	}

	// Rate 0: pointer-identical passthrough storage — everything completes
	// and matches, the planted casualties are repaired/quarantined.
	r0 := rows1[0]
	if r0.Completed != r0.Sessions {
		t.Fatalf("rate 0: %d/%d uploads completed\n%s", r0.Completed, r0.Sessions, t1)
	}
	if r0.Identical != r0.Sessions {
		t.Fatalf("rate 0: %d/%d archives byte-identical\n%s", r0.Identical, r0.Sessions, t1)
	}
	if r0.Repaired != 1 || r0.Quarantined != 1 {
		t.Fatalf("rate 0: repaired=%d quarantined=%d, want 1/1\n%s", r0.Repaired, r0.Quarantined, t1)
	}
	// At every rate: an upload that completed must be byte-identical.
	for _, r := range rows1 {
		if r.Corrupt != 0 {
			t.Fatalf("rate %g: %d completed uploads are not byte-identical\n%s", r.Rate, r.Corrupt, t1)
		}
	}
}
