package scrub

// The disk-fault sweep behind `jportal chaos -disk`: push an archive
// through an in-process ingest server whose storage runs behind a seeded
// iofault injector, once per rate, then scrub-and-repair two crafted
// casualties — a torn-tail session (SIGKILL-mid-record shape) and a
// corrupt sealed one — and report outcome invariants only. For a fixed
// seed the table is byte-identical run to run: per-scope fault streams
// make each session's verdicts a pure function of its own op sequence,
// and sessions push sequentially, exactly like the netfault fleet sweep.

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"jportal"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/iofault"
	"jportal/internal/metrics"
	"jportal/internal/streamfmt"
)

// DiskSweepConfig configures one `jportal chaos -disk` sweep.
type DiskSweepConfig struct {
	// ArchiveDir is a sealed chunked archive (collect -chunked output) to
	// push through the faulted storage.
	ArchiveDir string
	// SourceID is the archive's trace-source backend ("" = default).
	SourceID string
	// Seed feeds the iofault matrix.
	Seed uint64
	// Rates are the iofault.DefaultMatrix scale factors to sweep.
	Rates []float64
	// Sessions is how many clean-path sessions to push per rate
	// (default 2). One torn-tail victim rides along on top of these.
	Sessions int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// DiskSweepRow is one rate's outcome: invariants only (counts, not
// timings), so the table is byte-comparable in CI.
type DiskSweepRow struct {
	Rate        float64
	Matrix      iofault.Matrix
	Sessions    int // pushed sessions + the torn-tail victim
	Completed   int // uploads that finished (including the victim's resume)
	Repaired    int // scrub torn-tail truncations
	Quarantined int // scrub quarantines (the corrupt sealed casualty)
	Identical   int // final archives byte-identical to the source
	// Corrupt counts uploads that reported completion but whose archive is
	// NOT byte-identical to the source — silent corruption. The durability
	// invariant is Corrupt == 0 at every rate: under sustained injected
	// EIO/ENOSPC an upload may fail outright (the session poisons after
	// repeated persist failures — honest data loss the client sees), but a
	// success must mean the bytes are right.
	Corrupt int
}

// sweepChunkBytes is the client chunking used for every push in the
// sweep and for crafting the torn victim's frontier: the two must agree
// so the victim's resumed frames line up with its fabricated state.
const sweepChunkBytes = 4096

// DiskSweep runs the sweep.
func DiskSweep(cfg DiskSweepConfig) ([]DiskSweepRow, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{0, 1, 2}
	}
	rows := make([]DiskSweepRow, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		row, err := diskSweepOnce(cfg, rate)
		if err != nil {
			return rows, fmt.Errorf("disk sweep at rate %g: %w", rate, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func diskSweepOnce(cfg DiskSweepConfig, rate float64) (DiskSweepRow, error) {
	row := DiskSweepRow{
		Rate:     rate,
		Matrix:   iofault.DefaultMatrix(cfg.Seed).Scale(rate),
		Sessions: cfg.Sessions + 1, // + the torn-tail victim
	}
	inj := iofault.NewInjector(row.Matrix, metrics.Default)

	dataDir, err := os.MkdirTemp("", "jportal-chaos-disk-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dataDir)

	// Phase 1: clean-path uploads under injected storage faults. The
	// client retries through the sheds; graceful degradation means every
	// upload still completes and archives byte-identical.
	var ids []string
	done := make(map[string]bool)
	err = withIngestServer(dataDir, inj, func(addr string) error {
		for i := 0; i < cfg.Sessions; i++ {
			id := fmt.Sprintf("chaos-disk-%d", i)
			ids = append(ids, id)
			if pushSweepSession(cfg, addr, id) {
				row.Completed++
				done[id] = true
			} else {
				cfg.Logf("chaos -disk: rate %g session %s did not complete", rate, id)
			}
		}
		return nil
	})
	if err != nil {
		return row, err
	}

	// Phase 2: plant the casualties. The torn victim has the exact shape
	// a SIGKILL mid-record leaves behind — durable frontier at a verified
	// boundary, a partial record past it. The mangled one is a sealed
	// archive with a flipped byte inside the acknowledged prefix and no
	// peer holding a copy: unrepairable, so it must be quarantined.
	const victimID = "chaos-disk-victim"
	if err := craftTornVictim(dataDir, victimID, cfg.ArchiveDir); err != nil {
		return row, err
	}
	if err := craftMangled(dataDir, "chaos-disk-mangled", cfg.ArchiveDir); err != nil {
		return row, err
	}

	// Phase 3: scrub and repair (plain OS — repairs must always work).
	rep, err := Run(Config{DataDir: dataDir, Repair: true, Logf: cfg.Logf})
	if err != nil {
		return row, err
	}
	row.Repaired = rep.TornRepaired
	row.Quarantined = rep.Quarantined

	// Phase 4: the repaired victim resumes its upload — through the same
	// injector, continuing its fault stream — and must finish
	// byte-identical like everyone else.
	ids = append(ids, victimID)
	err = withIngestServer(dataDir, inj, func(addr string) error {
		if pushSweepSession(cfg, addr, victimID) {
			row.Completed++
			done[victimID] = true
		} else {
			cfg.Logf("chaos -disk: rate %g victim resume did not complete", rate)
		}
		return nil
	})
	if err != nil {
		return row, err
	}

	for _, id := range ids {
		identical := diskArchiveIdentical(cfg.ArchiveDir, filepath.Join(dataDir, id))
		if identical {
			row.Identical++
		}
		if done[id] && !identical {
			row.Corrupt++
			cfg.Logf("chaos -disk: rate %g session %s completed but is not byte-identical", rate, id)
		}
	}
	return row, nil
}

// withIngestServer runs fn against a loopback ingest server over dataDir
// whose storage goes through inj, then drains it.
func withIngestServer(dataDir string, inj *iofault.Injector, fn func(addr string) error) error {
	srv, err := ingest.NewServer(ingest.Config{DataDir: dataDir, IOFault: inj})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}()
	return fn(ln.Addr().String())
}

// pushSweepSession pushes the sweep archive as one session, absorbing
// fault-induced retries. Completion, not latency, is the invariant.
func pushSweepSession(cfg DiskSweepConfig, addr, id string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, err := client.PushArchive(ctx, client.Options{
		Addr:          addr,
		SessionID:     id,
		SourceID:      cfg.SourceID,
		MaxChunkBytes: sweepChunkBytes,
		MaxAttempts:   200,
		Backoff:       2 * time.Millisecond,
		MaxBackoff:    50 * time.Millisecond,
		RetryBudget:   -1, // the sweep measures storage survival, not client patience
	}, cfg.ArchiveDir)
	if err != nil {
		cfg.Logf("chaos -disk: session %s: %v", id, err)
		return false
	}
	return true
}

// sweepFrames replicates the client's deterministic record batching, so
// a fabricated frontier lands exactly where a resumed push expects it.
func sweepFrames(records []byte) ([][]byte, error) {
	var frames [][]byte
	for off := 0; off < len(records); {
		end := off
		for end < len(records) {
			n, err := streamfmt.Scan(records[end:])
			if err != nil {
				return nil, err
			}
			if end > off && end+n-off > sweepChunkBytes {
				break
			}
			end += n
		}
		frames = append(frames, records[off:end])
		off = end
	}
	return frames, nil
}

// craftTornVictim fabricates the on-disk shape of a session whose server
// died mid-record: archive.meta and program.gob verbatim from the source
// archive, a stream holding the first half of the client's frames plus a
// partial record, and an ingest.state frontier pointing at the boundary
// before the tear.
func craftTornVictim(dataDir, id, archiveDir string) error {
	stream, program, meta, err := readSweepArchive(archiveDir)
	if err != nil {
		return err
	}
	frames, err := sweepFrames(stream[streamfmt.HeaderLen:])
	if err != nil {
		return err
	}
	if len(frames) < 2 {
		return errors.New("scrub: sweep archive too small to tear (need at least two frames)")
	}
	c := len(frames) / 2 // chunk frames already acknowledged
	dir := filepath.Join(dataDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "archive.meta"), meta, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "program.gob"), program, 0o644); err != nil {
		return err
	}
	img := append([]byte(nil), stream[:streamfmt.HeaderLen]...)
	for _, f := range frames[:c] {
		img = append(img, f...)
	}
	frontier := int64(len(img))
	crc := crc32.Update(0, crc32.IEEETable, img)
	// The torn tail: the next frame's first record, missing its last byte
	// (every record is at least 5 bytes, so the cut is always mid-record).
	next := frames[c]
	n, err := streamfmt.Scan(next)
	if err != nil {
		return err
	}
	img = append(img, next[:n-1]...)
	if err := os.WriteFile(filepath.Join(dir, jportal.StreamFileName), img, 0o644); err != nil {
		return err
	}
	// Frame seq 1 is the program; chunk frames follow, so c acknowledged
	// chunk frames put the frontier at seq 1+c.
	return ingest.WriteSessionState(dir, ingest.SessionState{
		Seq: uint64(1 + c), Size: frontier, CRC: crc, Sealed: false,
	})
}

// craftMangled fabricates a sealed session with a flipped byte inside the
// acknowledged prefix: unrepairable without a peer copy.
func craftMangled(dataDir, id, archiveDir string) error {
	stream, program, meta, err := readSweepArchive(archiveDir)
	if err != nil {
		return err
	}
	dir := filepath.Join(dataDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "archive.meta"), meta, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "program.gob"), program, 0o644); err != nil {
		return err
	}
	img := append([]byte(nil), stream...)
	img[streamfmt.HeaderLen] ^= 0xFF // first record's tag byte
	if err := os.WriteFile(filepath.Join(dir, jportal.StreamFileName), img, 0o644); err != nil {
		return err
	}
	return ingest.WriteSessionState(dir, ingest.SessionState{
		Seq: 1, Size: int64(len(img)),
		CRC: crc32.ChecksumIEEE(stream[:len(stream)-5]), Sealed: true,
	})
}

func readSweepArchive(archiveDir string) (stream, program, meta []byte, err error) {
	stream, err = os.ReadFile(filepath.Join(archiveDir, jportal.StreamFileName))
	if err != nil {
		return nil, nil, nil, err
	}
	program, err = os.ReadFile(filepath.Join(archiveDir, "program.gob"))
	if err != nil {
		return nil, nil, nil, err
	}
	meta, err = os.ReadFile(filepath.Join(archiveDir, "archive.meta"))
	if err != nil {
		return nil, nil, nil, err
	}
	return stream, program, meta, nil
}

// diskArchiveIdentical compares the record stream and program bytes.
func diskArchiveIdentical(srcDir, dstDir string) bool {
	for _, name := range []string{jportal.StreamFileName, "program.gob"} {
		a, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			return false
		}
		b, err := os.ReadFile(filepath.Join(dstDir, name))
		if err != nil {
			return false
		}
		if string(a) != string(b) {
			return false
		}
	}
	return true
}

// FormatDiskSweep renders the sweep table: outcome invariants plus the
// (rate-determined) matrix columns, byte-identical per seed.
func FormatDiskSweep(subject string, seed uint64, rows []DiskSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== chaos -disk: %s (seed %d) ===\n", subject, seed)
	fmt.Fprintf(&b, "%-6s %-9s %-10s %-9s %-12s %-10s %-8s %-8s %-8s %-8s\n",
		"rate", "sessions", "completed", "repaired", "quarantined", "identical", "corrupt", "enospc", "torn", "write")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %-9d %-10d %-9d %-12d %-10d %-8d %-8.3f %-8.3f %-8.3f\n",
			r.Rate, r.Sessions, r.Completed, r.Repaired, r.Quarantined, r.Identical, r.Corrupt,
			r.Matrix.ENOSPC, r.Matrix.TornWrite, r.Matrix.WriteErr)
	}
	return b.String()
}
