package scrub

// The background sweeper: jportal serve (and the coordinator) run one of
// these next to the ingest server. Each tick scrubs the data dir in
// repair mode, then applies the retention policy. Busy sessions are
// skipped via the server's own SessionBusy, so the sweeper never races a
// live writer.

import (
	"sync"
	"time"
)

// SweeperConfig configures the background sweep.
type SweeperConfig struct {
	// Interval between sweeps (0 = 5 minutes).
	Interval time.Duration
	// Scrub is the per-sweep scrub configuration; Repair is forced on and
	// MinIdle defaults to Interval/2 (a session untouched for half an
	// interval has no writer the Busy hook missed).
	Scrub Config
	// Retention is applied after each scrub; Now is stamped per sweep.
	// The zero policy disables retention.
	Retention RetentionPolicy
	// Logf receives one summary line per sweep (nil = silent).
	Logf func(format string, args ...any)
}

// Sweeper is a running background sweep loop.
type Sweeper struct {
	cfg  SweeperConfig
	stop chan struct{}
	wg   sync.WaitGroup

	mu    sync.Mutex
	last  *Report
	runs  int
	rstat RetentionStats
}

// StartSweeper launches the sweep loop. Stop tears it down.
func StartSweeper(cfg SweeperConfig) *Sweeper {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.Scrub.Repair = true
	if cfg.Scrub.MinIdle == 0 {
		cfg.Scrub.MinIdle = cfg.Interval / 2
	}
	if cfg.Retention.Busy == nil {
		cfg.Retention.Busy = cfg.Scrub.Busy
	}
	s := &Sweeper{cfg: cfg, stop: make(chan struct{})}
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *Sweeper) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// Sweep runs one scrub+retention pass immediately (the loop calls it per
// tick; tests and the CLI call it directly).
func (s *Sweeper) Sweep() {
	rep, err := Run(s.cfg.Scrub)
	if err != nil {
		s.cfg.Logf("scrub sweep: %v", err)
		return
	}
	var rstat RetentionStats
	if s.cfg.Retention.MaxAge > 0 || s.cfg.Retention.MaxBytes > 0 {
		pol := s.cfg.Retention
		pol.Now = time.Now()
		rstat, err = ApplyRetention(s.cfg.Scrub.DataDir, pol, s.cfg.Scrub.Registry, s.cfg.Logf)
		if err != nil {
			s.cfg.Logf("retention sweep: %v", err)
		}
	}
	s.mu.Lock()
	s.last, s.runs = rep, s.runs+1
	s.rstat.Deleted += rstat.Deleted
	s.rstat.BytesReclaimed += rstat.BytesReclaimed
	s.mu.Unlock()
	if rep.Damaged > 0 || rstat.Deleted > 0 {
		s.cfg.Logf("sweep: %d sessions scanned, %d damaged (%d truncated, %d refetched, %d reset, %d quarantined), retention deleted %d (%d bytes)",
			rep.Scanned, rep.Damaged, rep.TornRepaired, rep.Refetched, rep.Reset, rep.Quarantined,
			rstat.Deleted, rstat.BytesReclaimed)
	}
}

// Last returns the most recent sweep's report (nil before the first) and
// how many sweeps have run.
func (s *Sweeper) Last() (*Report, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.runs
}

// Stop halts the loop and waits for an in-flight sweep to finish.
func (s *Sweeper) Stop() {
	close(s.stop)
	s.wg.Wait()
}
