package scrub

// Sealed-archive compaction: rewrite a chunked archive dropping records
// that carry no information — duplicate blob records (a reconnecting
// client can legally re-send metadata), watermark records that do not
// advance their core's mark, and trailing bytes after the seal — and
// re-seal. A clean archive compacts to itself byte-identically: when
// nothing would be dropped the file is not rewritten at all, which the
// golden test pins.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"jportal"
	"jportal/internal/fsatomic"
	"jportal/internal/ingest"
	"jportal/internal/metrics"
	"jportal/internal/streamfmt"
)

// CompactStats summarises one compaction.
type CompactStats struct {
	Rewritten      bool
	DroppedRecords int
	BytesBefore    int64
	BytesAfter     int64
}

// ErrNotSealed reports a compaction attempt on an archive still being
// written: compaction is for finished archives only — rewriting under a
// live writer would corrupt the seq↔byte mapping its client resumes by.
var ErrNotSealed = errors.New("scrub: archive is not sealed; compaction applies to finished archives only")

// CompactArchive compacts the sealed chunked archive in dir. reg receives
// the compaction_* counters (nil = metrics.Default).
func CompactArchive(dir string, reg *metrics.Registry) (CompactStats, error) {
	var cs CompactStats
	if reg == nil {
		reg = metrics.Default
	}
	info, err := jportal.ReadArchiveInfo(dir)
	if err != nil {
		return cs, err
	}
	if info.Layout != jportal.LayoutChunked {
		return cs, fmt.Errorf("scrub: %s is a %q archive; compaction applies to chunked archives", dir, info.Layout)
	}
	path := filepath.Join(dir, jportal.StreamFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		return cs, err
	}
	cs.BytesBefore = int64(len(data))

	ncores, err := streamfmt.ParseHeader(data)
	if err != nil {
		return cs, fmt.Errorf("scrub: %s: %w", path, err)
	}
	out := make([]byte, 0, len(data))
	out = append(out, data[:streamfmt.HeaderLen]...)
	crc := crc32.Update(0, crc32.IEEETable, out)     // compacted stream
	origCRC := crc                                   // original stream, for verifying its seal
	marks := make([]uint64, ncores)
	seenBlobs := map[string]struct{}{}
	sealed := false
	off := streamfmt.HeaderLen
	for off < len(data) {
		if sealed {
			// Trailing bytes after the seal carry nothing the seal covers.
			cs.DroppedRecords++
			break
		}
		n, err := streamfmt.Scan(data[off:])
		if err != nil {
			// Compaction refuses damaged input: scrub and repair first.
			return cs, fmt.Errorf("scrub: %s at byte %d: %w", path, off, err)
		}
		rec := data[off : off+n]
		off += n
		if sealCRC, ok := streamfmt.SealCRC(rec); ok {
			// Verify against the original stream, not the compacted one:
			// the input must be intact before we rewrite it.
			if sealCRC != origCRC {
				return cs, fmt.Errorf("scrub: %s: seal CRC does not match; repair before compacting", path)
			}
			sealed = true
			continue // re-sealed below with the compacted checksum
		}
		origCRC = crc32.Update(origCRC, crc32.IEEETable, rec)
		drop := false
		switch rec[0] {
		case streamfmt.TagBlob:
			if _, dup := seenBlobs[string(rec)]; dup {
				drop = true
			} else {
				seenBlobs[string(rec)] = struct{}{}
			}
		case streamfmt.TagWatermark:
			ev, _, err := streamfmt.Decode(rec, nil)
			if err != nil {
				return cs, fmt.Errorf("scrub: %s at byte %d: %w", path, off-n, err)
			}
			if ev.Core < 0 || ev.Core >= ncores || ev.Mark <= marks[ev.Core] {
				drop = true
			} else {
				marks[ev.Core] = ev.Mark
			}
		}
		if drop {
			cs.DroppedRecords++
			continue
		}
		out = append(out, rec...)
		crc = crc32.Update(crc, crc32.IEEETable, rec)
	}
	if !sealed {
		return cs, ErrNotSealed
	}
	if cs.DroppedRecords == 0 {
		// Nothing to drop: the file is already minimal. Leaving it
		// untouched (not even a same-bytes rewrite) is what makes clean
		// archives byte-identical across compaction, mtimes included.
		cs.BytesAfter = cs.BytesBefore
		return cs, nil
	}
	preSealCRC := crc
	out = append(out, streamfmt.TagSeal)
	var sealBuf [4]byte
	sealBuf[0] = byte(preSealCRC)
	sealBuf[1] = byte(preSealCRC >> 8)
	sealBuf[2] = byte(preSealCRC >> 16)
	sealBuf[3] = byte(preSealCRC >> 24)
	out = append(out, sealBuf[:]...)
	if err := fsatomic.WriteFile(path, out, 0o644); err != nil {
		return cs, err
	}
	cs.BytesAfter = int64(len(out))
	cs.Rewritten = true

	// The durable frontier must follow the rewrite: a stale ingest.state
	// whose Size exceeds the compacted file would make a later restore()
	// zero-extend the stream — silent corruption. Seq is preserved (the
	// session is sealed; no client resumes it) and the CRC becomes the
	// compacted pre-seal checksum.
	if st, err := ingest.ReadSessionState(dir); err == nil {
		st.Size = int64(len(out))
		st.CRC = preSealCRC
		st.Sealed = true
		if err := ingest.WriteSessionState(dir, st); err != nil {
			return cs, err
		}
	} else if !os.IsNotExist(err) {
		return cs, err
	}
	reg.Add(metrics.CounterCompactionRewritten, 1)
	reg.Add(metrics.CounterCompactionDropped, int64(cs.DroppedRecords))
	return cs, nil
}
