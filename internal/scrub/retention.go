package scrub

// Retention: the per-data-dir age and quota policy. Old finished sessions
// are deleted first by age, then oldest-first until the dir fits the byte
// quota. Unsealed sessions that are not yet stale are never deleted by
// quota — killing a live upload to make room would turn backpressure
// into data loss; the ingest layer's ENOSPC shed path handles a full
// disk gracefully instead.

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"jportal"
	"jportal/internal/ingest"
	"jportal/internal/metrics"
	"jportal/internal/streamfmt"
)

// RetentionPolicy bounds a data dir.
type RetentionPolicy struct {
	// MaxAge deletes finished (or quarantined) sessions whose newest file
	// is older than this. 0 = no age limit.
	MaxAge time.Duration
	// MaxBytes caps the data dir's total size; oldest finished sessions
	// are deleted until it fits. 0 = no quota.
	MaxBytes int64
	// Busy, when set, protects sessions attached to a live server.
	Busy func(id string) bool
	// Now anchors age computation (zero = time.Now()).
	Now time.Time
}

// RetentionStats summarises one retention pass.
type RetentionStats struct {
	Deleted        int
	BytesReclaimed int64
	// Kept is the surviving byte total (sessions + quarantine).
	Kept int64
}

// retEntry is one deletable unit: a session dir or a quarantined one.
type retEntry struct {
	path        string
	id          string
	bytes       int64
	mtime       time.Time
	quarantined bool
	sealed      bool
}

// ApplyRetention enforces pol over dataDir. reg receives the retention_*
// counters (nil = metrics.Default); logf one line per deletion (nil =
// silent).
func ApplyRetention(dataDir string, pol RetentionPolicy, reg *metrics.Registry, logf func(format string, args ...any)) (RetentionStats, error) {
	var st RetentionStats
	if reg == nil {
		reg = metrics.Default
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if pol.Now.IsZero() {
		pol.Now = time.Now()
	}
	entries, err := collectRetention(dataDir)
	if err != nil {
		return st, err
	}
	var total int64
	for _, e := range entries {
		total += e.bytes
	}
	remove := func(e retEntry, why string) {
		if err := os.RemoveAll(e.path); err != nil {
			logf("retention: %s: %v", e.path, err)
			return
		}
		st.Deleted++
		st.BytesReclaimed += e.bytes
		total -= e.bytes
		reg.Add(metrics.CounterRetentionDeleted, 1)
		reg.Add(metrics.CounterRetentionBytes, e.bytes)
		logf("retention: deleted %s (%d bytes, %s)", e.path, e.bytes, why)
	}
	deletable := func(e retEntry) bool {
		if e.quarantined {
			return true // damage, already preserved in the ledger
		}
		if pol.Busy != nil && pol.Busy(e.id) {
			return false
		}
		return true
	}

	// Age first: anything old enough goes, sealed or not — an upload idle
	// past MaxAge is abandoned, not live.
	kept := entries[:0]
	for _, e := range entries {
		if pol.MaxAge > 0 && pol.Now.Sub(e.mtime) > pol.MaxAge && deletable(e) {
			remove(e, "age")
			continue
		}
		kept = append(kept, e)
	}
	entries = kept

	// Then the quota, oldest first. Quarantined entries go before healthy
	// ones of the same age; unsealed (possibly resuming) sessions only as
	// the last resort — and only when the Busy hook clears them.
	if pol.MaxBytes > 0 && total > pol.MaxBytes {
		sort.SliceStable(entries, func(i, j int) bool {
			if entries[i].quarantined != entries[j].quarantined {
				return entries[i].quarantined
			}
			if entries[i].sealed != entries[j].sealed {
				return entries[i].sealed
			}
			return entries[i].mtime.Before(entries[j].mtime)
		})
		for _, e := range entries {
			if total <= pol.MaxBytes {
				break
			}
			if !deletable(e) {
				continue
			}
			if !e.quarantined && !e.sealed {
				// A live-looking upload: spare it unless it is the only
				// thing left to cut — and even then, only via MaxAge.
				continue
			}
			remove(e, "quota")
		}
	}
	st.Kept = total
	return st, nil
}

// collectRetention enumerates the deletable units under dataDir.
func collectRetention(dataDir string) ([]retEntry, error) {
	var out []retEntry
	top, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, err
	}
	add := func(path, id string, quarantined bool) {
		e := retEntry{path: path, id: id, quarantined: quarantined}
		e.bytes, e.mtime = dirSizeMtime(path)
		e.sealed = sessionSealed(path)
		out = append(out, e)
	}
	for _, d := range top {
		if !d.IsDir() {
			continue
		}
		if strings.HasPrefix(d.Name(), ".") {
			if d.Name() != QuarantineDirName {
				continue
			}
			qs, err := os.ReadDir(filepath.Join(dataDir, QuarantineDirName))
			if err != nil {
				continue
			}
			for _, q := range qs {
				if q.IsDir() {
					add(filepath.Join(dataDir, QuarantineDirName, q.Name()), q.Name(), true)
				}
			}
			continue
		}
		add(filepath.Join(dataDir, d.Name()), d.Name(), false)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out, nil
}

// dirSizeMtime sums a session dir's file sizes and newest mtime.
func dirSizeMtime(dir string) (int64, time.Time) {
	var bytes int64
	var newest time.Time
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, newest
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil || fi.IsDir() {
			continue
		}
		bytes += fi.Size()
		if fi.ModTime().After(newest) {
			newest = fi.ModTime()
		}
	}
	return bytes, newest
}

// sessionSealed reports whether a session looks finished: its durable
// frontier says sealed, or (stateless local archives) its stream ends in
// a seal record.
func sessionSealed(dir string) bool {
	if st, err := ingest.ReadSessionState(dir); err == nil {
		return st.Sealed
	}
	f, err := os.Open(filepath.Join(dir, jportal.StreamFileName))
	if err != nil {
		return false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || fi.Size() < streamfmt.HeaderLen+5 {
		return false
	}
	var tail [5]byte
	if _, err := f.ReadAt(tail[:], fi.Size()-5); err != nil {
		return false
	}
	_, ok := streamfmt.SealCRC(tail[:])
	return ok
}
