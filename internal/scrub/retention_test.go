package scrub

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"jportal/internal/metrics"
)

// touch backdates every file in a session dir so retention sees it aged.
func touch(t *testing.T, dir string, at time.Time) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Chtimes(filepath.Join(dir, e.Name()), at, at); err != nil {
			t.Fatal(err)
		}
	}
}

func dirExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func TestRetentionDeletesByAge(t *testing.T) {
	dataDir := t.TempDir()
	gob := testProgramGob(t)
	stream := buildStream(t, 1, 4)
	now := time.Now()
	old := writeSession(t, dataDir, "old", gob, stream, 6, int64(len(stream)), true)
	fresh := writeSession(t, dataDir, "fresh", gob, stream, 6, int64(len(stream)), true)
	touch(t, old, now.Add(-3*time.Hour))
	touch(t, fresh, now.Add(-10*time.Minute))

	st, err := ApplyRetention(dataDir, RetentionPolicy{MaxAge: time.Hour, Now: now}, metrics.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 1 || dirExists(old) || !dirExists(fresh) {
		t.Fatalf("deleted=%d oldExists=%v freshExists=%v", st.Deleted, dirExists(old), dirExists(fresh))
	}
	if st.BytesReclaimed <= 0 {
		t.Fatal("no bytes reclaimed")
	}
}

func TestRetentionQuotaOrdering(t *testing.T) {
	dataDir := t.TempDir()
	gob := testProgramGob(t)
	stream := buildStream(t, 1, 6)
	now := time.Now()

	// Quarantined damage goes first, then the oldest sealed session; an
	// unsealed (possibly-resuming) upload survives the quota even though it
	// is the oldest entry of all.
	sealedOld := writeSession(t, dataDir, "sealed-old", gob, stream, 8, int64(len(stream)), true)
	sealedNew := writeSession(t, dataDir, "sealed-new", gob, stream, 8, int64(len(stream)), true)
	unsealed := writeSession(t, dataDir, "unsealed", gob, stream[:len(stream)-5], 0, 0, false)
	qdir := filepath.Join(dataDir, QuarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	quarantined := writeSession(t, qdir, "rotten", gob, stream, 8, int64(len(stream)), true)

	touch(t, unsealed, now.Add(-50*time.Minute))
	touch(t, sealedOld, now.Add(-40*time.Minute))
	touch(t, quarantined, now.Add(-30*time.Minute))
	touch(t, sealedNew, now.Add(-10*time.Minute))

	size := func(dir string) int64 { b, _ := dirSizeMtime(dir); return b }
	total := size(sealedOld) + size(sealedNew) + size(unsealed) + size(quarantined)
	// Budget for exactly the two survivors we expect (sealed-new, unsealed):
	// freeing the quarantined entry alone is not enough, so the oldest
	// sealed session must go too.
	budget := total - size(quarantined) - size(sealedOld)

	st, err := ApplyRetention(dataDir, RetentionPolicy{MaxBytes: budget, Now: now}, metrics.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dirExists(quarantined) {
		t.Fatal("quarantined entry not deleted first")
	}
	if dirExists(sealedOld) {
		t.Fatal("oldest sealed session survived the quota")
	}
	if !dirExists(sealedNew) || !dirExists(unsealed) {
		t.Fatalf("wrong survivors: sealedNew=%v unsealed=%v", dirExists(sealedNew), dirExists(unsealed))
	}
	if st.Deleted != 2 || st.Kept > budget {
		t.Fatalf("stats = %+v (budget %d)", st, budget)
	}
}

func TestRetentionSparesBusySessions(t *testing.T) {
	dataDir := t.TempDir()
	gob := testProgramGob(t)
	stream := buildStream(t, 1, 4)
	now := time.Now()
	dir := writeSession(t, dataDir, "live", gob, stream, 6, int64(len(stream)), true)
	touch(t, dir, now.Add(-24*time.Hour))

	st, err := ApplyRetention(dataDir, RetentionPolicy{
		MaxAge: time.Hour,
		Busy:   func(id string) bool { return id == "live" },
		Now:    now,
	}, metrics.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 0 || !dirExists(dir) {
		t.Fatal("retention deleted a busy session")
	}
}

func TestSweeperRepairsOnSweep(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 1, 4)
	img := append(append([]byte(nil), stream...), 0x01, 0x02, 0x03)
	dir := writeSession(t, dataDir, "torn", testProgramGob(t), img, 6, int64(len(stream)), true)

	s := StartSweeper(SweeperConfig{
		Interval: time.Hour, // ticks never fire in-test; Sweep() is called directly
		Scrub: Config{
			DataDir:  dataDir,
			MinIdle:  time.Nanosecond, // the session was just written; don't skip it
			Registry: metrics.NewRegistry(),
		},
	})
	defer s.Stop()
	s.Sweep()

	rep, runs := s.Last()
	if runs != 1 || rep == nil || rep.TornRepaired != 1 {
		t.Fatalf("runs=%d rep=%+v", runs, rep)
	}
	got := streamBytes(t, dir)
	if len(got) != len(stream) {
		t.Fatalf("stream is %d bytes after sweep, want %d", len(got), len(stream))
	}
}
