package scrub

// White-box tests of the scrub classify-and-repair state machine. The
// archives are synthetic (the scrubber verifies structure, not run
// semantics); the end-to-end SIGKILL-resume-repair test lives in the repo
// root's scrub e2e test.

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jportal"
	"jportal/internal/bytecode"
	"jportal/internal/fault"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/metrics"
	"jportal/internal/pt"
	"jportal/internal/streamfmt"
	"jportal/internal/vm"
)

func testProgramGob(t *testing.T) []byte {
	t.Helper()
	prog := bytecode.MustAssemble(`
method T.main(0) {
    return
}
entry T.main
`)
	gob, err := client.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	return gob
}

// buildStream returns a complete, sealed synthetic stream.
func buildStream(t *testing.T, ncores, nchunks int) []byte {
	t.Helper()
	var buf bytes.Buffer
	e, err := streamfmt.NewEncoder(&buf, ncores)
	if err != nil {
		t.Fatal(err)
	}
	e.Sideband(vm.SwitchRecord{TSC: 1, Core: 0, Thread: 1})
	for i := 0; i < nchunks; i++ {
		items := []pt.Item{
			{Packet: pt.Packet{Kind: 1, IP: uint64(0x4000 + i), NBits: 5, Bits: uint64(i)}},
			{Packet: pt.Packet{Kind: 2, IP: uint64(0x5000 + i)}},
		}
		if err := e.Chunk(i%ncores, items); err != nil {
			t.Fatal(err)
		}
		e.Watermark(i%ncores, uint64(i+1)*100)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeSession materialises a session dir: archive.meta, program.gob, the
// stream image, and (unless seq is 0) an ingest.state describing frontier
// bytes of it.
func writeSession(t *testing.T, dataDir, id string, gob, stream []byte, seq uint64, frontier int64, sealed bool) string {
	t.Helper()
	dir := filepath.Join(dataDir, id)
	if err := jportal.InitChunkedArchiveDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "program.gob"), gob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, jportal.StreamFileName), stream, 0o644); err != nil {
		t.Fatal(err)
	}
	if seq > 0 {
		crcLen := frontier
		if sealed {
			crcLen -= 5 // the seal record is outside the running CRC
		}
		st := ingest.SessionState{
			Seq: seq, Size: frontier,
			CRC:    crc32.ChecksumIEEE(stream[:crcLen]),
			Sealed: sealed,
		}
		if err := ingest.WriteSessionState(dir, st); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// boundaryAt returns the byte offset after the first n records.
func boundaryAt(t *testing.T, stream []byte, n int) int64 {
	t.Helper()
	off := streamfmt.HeaderLen
	for i := 0; i < n; i++ {
		m, err := streamfmt.Scan(stream[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += m
	}
	return int64(off)
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func streamBytes(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, jportal.StreamFileName))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestScrubCleanSealedUntouched(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 2, 8)
	dir := writeSession(t, dataDir, "clean", testProgramGob(t), stream, 9, int64(len(stream)), true)

	rep := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: metrics.NewRegistry()})
	if rep.Clean != 1 || rep.Damaged != 0 {
		t.Fatalf("clean=%d damaged=%d, want 1/0\n%s", rep.Clean, rep.Damaged, FormatReport(rep))
	}
	if got := streamBytes(t, dir); !bytes.Equal(got, stream) {
		t.Fatal("scrub modified a clean archive")
	}
	if rep.BytesVerified != int64(len(stream)) {
		t.Fatalf("BytesVerified = %d, want %d", rep.BytesVerified, len(stream))
	}
}

func TestScrubTornTailTruncatesToFrontier(t *testing.T) {
	dataDir := t.TempDir()
	full := buildStream(t, 1, 6)
	records := full[:len(full)-5] // unsealed: upload still in flight
	frontier := boundaryAt(t, records, 4)
	// Past the frontier: one whole unacknowledged record, then a torn one.
	n, err := streamfmt.Scan(records[frontier:])
	if err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), records[:frontier+int64(n)]...)
	img = append(img, records[frontier:frontier+5]...) // partial record tail
	dir := writeSession(t, dataDir, "torn", testProgramGob(t), img, 5, frontier, false)
	// writeSession computed the CRC over img[:frontier] — the acked prefix.

	rep := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: metrics.NewRegistry()})
	if rep.TornRepaired != 1 {
		t.Fatalf("TornRepaired = %d\n%s", rep.TornRepaired, FormatReport(rep))
	}
	if got := streamBytes(t, dir); !bytes.Equal(got, records[:frontier]) {
		t.Fatalf("repaired stream is %d bytes, want the %d-byte acked prefix", len(got), frontier)
	}
	st, err := ingest.ReadSessionState(dir)
	if err != nil || st.Size != frontier || st.Seq != 5 {
		t.Fatalf("state after repair: %+v, %v", st, err)
	}
}

func TestScrubTrailingAfterSealTruncates(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 1, 4)
	img := append(append([]byte(nil), stream...), 0xDE, 0xAD, 0xBE)
	dir := writeSession(t, dataDir, "trail", testProgramGob(t), img, 6, int64(len(stream)), true)
	// State describes the sealed prefix, not the junk: writeSession's CRC
	// covers img[:len(stream)-5], which equals the sealed stream's.
	st := ingest.SessionState{Seq: 6, Size: int64(len(stream)),
		CRC: crc32.ChecksumIEEE(stream[:len(stream)-5]), Sealed: true}
	if err := ingest.WriteSessionState(dir, st); err != nil {
		t.Fatal(err)
	}

	rep := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: metrics.NewRegistry()})
	if rep.TornRepaired != 1 {
		t.Fatalf("TornRepaired = %d\n%s", rep.TornRepaired, FormatReport(rep))
	}
	if got := streamBytes(t, dir); !bytes.Equal(got, stream) {
		t.Fatal("trailing junk not cut back to the seal")
	}
}

func TestScrubCorruptSealedQuarantines(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 1, 4)
	img := append([]byte(nil), stream...)
	img[streamfmt.HeaderLen] ^= 0xFF // first record tag
	led := fault.NewLedger(metrics.NewRegistry())
	writeSession(t, dataDir, "rotten", testProgramGob(t), img, 6, int64(len(img)), true)

	reg := metrics.NewRegistry()
	rep := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: reg, Ledger: led})
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined = %d\n%s", rep.Quarantined, FormatReport(rep))
	}
	if _, err := os.Stat(filepath.Join(dataDir, QuarantineDirName, "rotten", jportal.StreamFileName)); err != nil {
		t.Fatalf("quarantined session not moved: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "rotten")); !os.IsNotExist(err) {
		t.Fatal("original session dir still present")
	}
	if n := led.Count(fault.ReasonCorruptRecord); n != 1 {
		t.Fatalf("ledger corrupt_record = %d, want 1", n)
	}
	if got := reg.Snapshot()[metrics.CounterScrubQuarantined]; got != 1 {
		t.Fatalf("%s = %d, want 1", metrics.CounterScrubQuarantined, got)
	}
}

func TestScrubMissingMetaQuarantines(t *testing.T) {
	dataDir := t.TempDir()
	dir := filepath.Join(dataDir, "noid")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A stream with no archive.meta and no program.gob: not attributable.
	if err := os.WriteFile(filepath.Join(dir, jportal.StreamFileName), buildStream(t, 1, 2), 0o644); err != nil {
		t.Fatal(err)
	}
	led := fault.NewLedger(metrics.NewRegistry())
	rep := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: metrics.NewRegistry(), Ledger: led})
	if rep.Quarantined != 1 || rep.Sessions[0].Outcome != OutcomeMissingMeta {
		t.Fatalf("want one missing_meta quarantine\n%s", FormatReport(rep))
	}
	if n := led.Count(fault.ReasonMissingMeta); n != 1 {
		t.Fatalf("ledger missing_meta = %d, want 1", n)
	}
}

func TestScrubResetsCorruptUnsealedUpload(t *testing.T) {
	dataDir := t.TempDir()
	full := buildStream(t, 1, 6)
	records := full[:len(full)-5]
	frontier := boundaryAt(t, records, 3)
	img := append([]byte(nil), records[:frontier]...)
	img[streamfmt.HeaderLen+1] ^= 0xFF // corrupt inside the acked prefix
	dir := writeSession(t, dataDir, "resend", testProgramGob(t), img, 4, frontier, false)
	// Overwrite the state with the CRC of the *uncorrupted* prefix, as the
	// server would have recorded before the disk rotted.
	st := ingest.SessionState{Seq: 4, Size: frontier, CRC: crc32.ChecksumIEEE(records[:frontier])}
	if err := ingest.WriteSessionState(dir, st); err != nil {
		t.Fatal(err)
	}

	rep := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: metrics.NewRegistry()})
	if rep.Reset != 1 {
		t.Fatalf("Reset = %d\n%s", rep.Reset, FormatReport(rep))
	}
	got := streamBytes(t, dir)
	if int64(len(got)) != streamfmt.HeaderLen {
		t.Fatalf("reset stream is %d bytes, want the bare %d-byte header", len(got), streamfmt.HeaderLen)
	}
	if _, err := ingest.ReadSessionState(dir); !os.IsNotExist(err) {
		t.Fatalf("ingest.state should be removed after reset, got %v", err)
	}
}

// TestScrubRefetchFromPeer: a corrupt sealed session is replaced by a
// fleet peer's clean copy, replayed over the real ingest protocol, and
// comes out byte-identical to the peer's bytes.
func TestScrubRefetchFromPeer(t *testing.T) {
	dataDir, peerDir := t.TempDir(), t.TempDir()
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 10)
	writeSession(t, peerDir, "shared", gob, stream, 12, int64(len(stream)), true)

	img := append([]byte(nil), stream...)
	img[streamfmt.HeaderLen] ^= 0xFF
	writeSession(t, dataDir, "shared", gob, img, 12, int64(len(img)), true)

	rep := mustRun(t, Config{
		DataDir:  dataDir,
		Repair:   true,
		PeerDirs: []string{peerDir},
		Registry: metrics.NewRegistry(),
	})
	if rep.Refetched != 1 {
		t.Fatalf("Refetched = %d\n%s", rep.Refetched, FormatReport(rep))
	}
	dir := filepath.Join(dataDir, "shared")
	if got := streamBytes(t, dir); !bytes.Equal(got, stream) {
		t.Fatal("refetched stream differs from the peer's sealed copy")
	}
	gotGob, err := os.ReadFile(filepath.Join(dir, "program.gob"))
	if err != nil || !bytes.Equal(gotGob, gob) {
		t.Fatalf("refetched program differs: %v", err)
	}
	// A second scrub must find nothing to do.
	rep2 := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: metrics.NewRegistry()})
	if rep2.Damaged != 0 {
		t.Fatalf("refetched session still damaged\n%s", FormatReport(rep2))
	}
}

func TestScrubReportOnlyDoesNotMutate(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 1, 4)
	img := append(append([]byte(nil), stream...), 0x01, 0x02)
	dir := writeSession(t, dataDir, "look", testProgramGob(t), img, 6, int64(len(stream)), true)
	st := ingest.SessionState{Seq: 6, Size: int64(len(stream)),
		CRC: crc32.ChecksumIEEE(stream[:len(stream)-5]), Sealed: true}
	if err := ingest.WriteSessionState(dir, st); err != nil {
		t.Fatal(err)
	}

	rep := mustRun(t, Config{DataDir: dataDir, Repair: false, Registry: metrics.NewRegistry()})
	if rep.Damaged != 1 || rep.TornRepaired != 0 {
		t.Fatalf("damaged=%d repaired=%d, want 1/0", rep.Damaged, rep.TornRepaired)
	}
	if got := streamBytes(t, dir); !bytes.Equal(got, img) {
		t.Fatal("report-only scrub modified the stream")
	}
}

func TestScrubSkipsBusySessions(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 1, 4)
	img := append(append([]byte(nil), stream...), 0x01)
	writeSession(t, dataDir, "busy", testProgramGob(t), img, 6, int64(len(stream)), true)

	rep := mustRun(t, Config{
		DataDir:  dataDir,
		Repair:   true,
		Busy:     func(id string) bool { return id == "busy" },
		Registry: metrics.NewRegistry(),
	})
	if len(rep.Sessions) != 1 || rep.Sessions[0].Outcome != OutcomeSkipped {
		t.Fatalf("busy session not skipped\n%s", FormatReport(rep))
	}
	if rep.Damaged != 0 {
		t.Fatal("skipped session counted as damaged")
	}
}

func TestScrubTornShorterThanFrontierIsCorrupt(t *testing.T) {
	dataDir := t.TempDir()
	full := buildStream(t, 1, 6)
	records := full[:len(full)-5]
	frontier := boundaryAt(t, records, 4)
	// The file lost acknowledged bytes: it ends (mid-record) before the
	// durable frontier. Truncate-to-frontier would zero-extend — this must
	// classify as corrupt, and (unsealed, header intact) reset.
	img := append([]byte(nil), records[:frontier-3]...)
	dir := writeSession(t, dataDir, "short", testProgramGob(t), img, 5, frontier, false)
	st := ingest.SessionState{Seq: 5, Size: frontier, CRC: crc32.ChecksumIEEE(records[:frontier])}
	if err := ingest.WriteSessionState(dir, st); err != nil {
		t.Fatal(err)
	}

	rep := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: metrics.NewRegistry()})
	if rep.TornRepaired != 0 {
		t.Fatalf("zero-extending truncation applied\n%s", FormatReport(rep))
	}
	if rep.Reset != 1 {
		t.Fatalf("Reset = %d\n%s", rep.Reset, FormatReport(rep))
	}
	if got := streamBytes(t, dir); int64(len(got)) != streamfmt.HeaderLen {
		t.Fatalf("stream is %d bytes after reset, want %d", len(got), streamfmt.HeaderLen)
	}
}

func TestRateLimiterPaces(t *testing.T) {
	var slept []time.Duration
	lim := newRateLimiter(1000, func(d time.Duration) { slept = append(slept, d) })
	lim.take(2500)
	if len(slept) != 2 {
		t.Fatalf("slept %d times for 2.5s of budget, want 2", len(slept))
	}
	lim.take(400) // debt 900: under budget, no sleep
	if len(slept) != 2 {
		t.Fatalf("slept early at %d bytes of debt", 900)
	}
	// Rate 0 disables pacing entirely.
	lim0 := newRateLimiter(0, func(time.Duration) { t.Fatal("rate 0 slept") })
	lim0.take(1 << 30)
}

func TestScrubRemovesCorruptCheckpoint(t *testing.T) {
	dataDir := t.TempDir()
	stream := buildStream(t, 1, 4)
	dir := writeSession(t, dataDir, "ck", testProgramGob(t), stream, 6, int64(len(stream)), true)
	if err := os.WriteFile(filepath.Join(dir, "session.ckpt"), []byte("definitely not sealed"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, Config{DataDir: dataDir, Repair: true, Registry: metrics.NewRegistry()})
	if rep.Clean != 1 {
		t.Fatalf("archive should stay clean\n%s", FormatReport(rep))
	}
	if _, err := os.Stat(filepath.Join(dir, "session.ckpt")); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint not removed")
	}
}
