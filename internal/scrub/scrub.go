// Package scrub is the storage-durability sweep over an ingest data dir
// (DESIGN.md §16): it re-verifies record framing and CRC seals on every
// session archive at a bounded I/O rate, classifies what it finds — torn
// tail, mid-file corruption, missing header — and, in repair mode, fixes
// what can be fixed (truncate-to-last-acknowledged for torn tails,
// re-fetch over the ingest protocol when a fleet peer holds a sealed
// copy) and quarantines what cannot. The package also owns the
// retention/compaction pass (retention.go, compact.go), the background
// sweeper jportal serve runs (sweeper.go), and the deterministic
// disk-fault sweep behind jportal chaos -disk (disksweep.go).
//
// The scrubber's repair actions deliberately reuse the semantics the
// ingest server already has: truncating a session to its durable
// ingest.state frontier is exactly what the server's own restore() does
// on restart, so a scrub-repaired session and a server-restored one are
// indistinguishable to a resuming client, and the end-to-end seal CRC
// still guarantees the finished archive is byte-identical to the
// client's copy.
package scrub

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"jportal"
	"jportal/internal/ckpt"
	"jportal/internal/fault"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/metrics"
	"jportal/internal/streamfmt"
)

// QuarantineDirName is the dot-directory inside the data dir that damaged
// sessions are moved into. It starts with a dot so every data-dir walker
// (the fleet aggregator, retention, the scrubber itself) skips it as a
// session.
const QuarantineDirName = ".quarantine"

// Outcome classifies what the scrubber concluded about one session.
type Outcome string

// Session outcomes, from healthy to hopeless.
const (
	// OutcomeClean: sealed archive, every record framed, seal CRC matches.
	OutcomeClean Outcome = "clean"
	// OutcomeInProgress: unsealed but internally consistent — an upload
	// mid-flight. Not touched.
	OutcomeInProgress Outcome = "in_progress"
	// OutcomeTornTail: the file ends mid-record (or carries unacknowledged
	// bytes past the durable frontier) but the acknowledged prefix is
	// intact. Repair: truncate to the frontier, exactly like the ingest
	// server's own restart path.
	OutcomeTornTail Outcome = "torn_tail"
	// OutcomeCorrupt: damage inside the acknowledged prefix (or a seal
	// whose CRC does not cover the bytes on disk). Repair: re-fetch from a
	// peer's sealed copy, reset an unsealed upload to its header so the
	// client re-sends, or quarantine.
	OutcomeCorrupt Outcome = "corrupt"
	// OutcomeMissingMeta: the archive.meta header is absent or
	// unparseable; the session cannot be attributed or resumed.
	OutcomeMissingMeta Outcome = "missing_meta"
	// OutcomeSkipped: the session was busy (attached to a live server) or
	// too recently modified; scrubbing under a live writer would race it.
	OutcomeSkipped Outcome = "skipped"
)

// Action is the repair the scrubber applied (empty when reporting only).
type Action string

// Repair actions.
const (
	ActionTruncated   Action = "truncated"   // torn tail cut back to the durable frontier
	ActionRefetched   Action = "refetched"   // replaced via a peer's sealed copy over the ingest protocol
	ActionReset       Action = "reset"       // unsealed upload reset to its header for a clean re-send
	ActionQuarantined Action = "quarantined" // moved into .quarantine and ledgered
)

// Config configures one scrub pass.
type Config struct {
	// DataDir is the ingest data dir: one session archive per child dir.
	DataDir string
	// Repair applies repairs; false verifies and reports only.
	Repair bool
	// RateBytesPerSec bounds the verify read rate (token bucket over 64KiB
	// reads; 0 = unlimited). The scrubber shares the disk with live
	// ingest, so the default sweeper sets this.
	RateBytesPerSec int64
	// Busy, when set, reports whether a session is attached to a live
	// server (or has queued work); busy sessions are skipped.
	Busy func(id string) bool
	// MinIdle skips sessions whose files were modified within this window
	// — a writer the Busy hook cannot see may still be mid-append. 0
	// disables the check (tests).
	MinIdle time.Duration
	// PeerDirs are other fleet nodes' data dirs. A session whose local
	// copy is corrupt is re-fetched from the first peer holding a sealed,
	// clean copy, replayed over the ingest protocol into DataDir.
	PeerDirs []string
	// Ledger receives one typed entry per quarantined session (nil drops
	// them).
	Ledger *fault.Ledger
	// Registry receives the scrub_* counters (nil = metrics.Default).
	Registry *metrics.Registry
	// Logf receives one line per non-clean session (nil = silent).
	Logf func(format string, args ...any)

	// now and sleep are test hooks (nil = time.Now / time.Sleep).
	now   func() time.Time
	sleep func(d time.Duration)
}

// SessionReport is one session's verdict.
type SessionReport struct {
	ID      string
	Outcome Outcome
	Action  Action
	Detail  string
	Err     error // repair attempted and failed
}

// Report summarises one scrub pass. Sessions is sorted by ID, so the
// report is deterministic for a given data-dir state.
type Report struct {
	Sessions      []SessionReport
	Scanned       int
	BytesVerified int64
	Clean         int
	InProgress    int
	TornRepaired  int
	Refetched     int
	Reset         int
	Quarantined   int
	Damaged       int // non-clean sessions found (repaired or not)
}

func (c *Config) fill() error {
	if c.DataDir == "" {
		return errors.New("scrub: DataDir is required")
	}
	if c.Registry == nil {
		c.Registry = metrics.Default
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return nil
}

// Run executes one scrub pass over cfg.DataDir.
func Run(cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	limiter := newRateLimiter(cfg.RateBytesPerSec, cfg.sleep)
	rep := &Report{}
	var fetcher *peerFetcher
	defer func() {
		if fetcher != nil {
			fetcher.close()
		}
	}()
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		// Dot-dirs (.quarantine) and stray files are not sessions.
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		ids = append(ids, e.Name())
	}
	sort.Strings(ids)
	for _, id := range ids {
		sr := scrubSession(&cfg, rep, limiter, &fetcher, id)
		rep.Sessions = append(rep.Sessions, sr)
		rep.Scanned++
		cfg.Registry.Add(metrics.CounterScrubSessionsScanned, 1)
		switch sr.Outcome {
		case OutcomeClean:
			rep.Clean++
		case OutcomeInProgress:
			rep.InProgress++
		case OutcomeSkipped:
		default:
			rep.Damaged++
			cfg.Logf("scrub: session %q: %s (%s) %s", id, sr.Outcome, sr.Detail, sr.Action)
		}
		switch sr.Action {
		case ActionTruncated:
			rep.TornRepaired++
			cfg.Registry.Add(metrics.CounterScrubTornTails, 1)
		case ActionRefetched:
			rep.Refetched++
			cfg.Registry.Add(metrics.CounterScrubRefetched, 1)
		case ActionReset:
			rep.Reset++
			cfg.Registry.Add(metrics.CounterScrubReset, 1)
		case ActionQuarantined:
			rep.Quarantined++
			cfg.Registry.Add(metrics.CounterScrubQuarantined, 1)
		}
	}
	cfg.Registry.Add(metrics.CounterScrubBytesVerified, rep.BytesVerified)
	return rep, nil
}

// damage is the internal classification the stream walk produces.
type damage int

const (
	damageNone damage = iota
	damageTornTail
	damageCorrupt
	damageTrailing // bytes after a verified seal
)

// streamVerdict is everything the walk learned about one stream.jpt.
type streamVerdict struct {
	damage   damage
	detail   string
	size     int64 // file length
	lastGood int64 // boundary after the last structurally valid record
	sealEnd  int64 // boundary after a CRC-verified seal (0 = unsealed)
	// stateOK reports whether the durable frontier (when state is present)
	// names a record boundary whose running CRC matches — i.e. the
	// acknowledged prefix is intact.
	stateOK bool
}

// scrubSession verifies one session and (in repair mode) fixes it.
func scrubSession(cfg *Config, rep *Report, lim *rateLimiter, fetcher **peerFetcher, id string) SessionReport {
	sr := SessionReport{ID: id}
	dir := filepath.Join(cfg.DataDir, id)
	if cfg.Busy != nil && cfg.Busy(id) {
		sr.Outcome, sr.Detail = OutcomeSkipped, "session busy"
		return sr
	}
	if cfg.MinIdle > 0 {
		if mt, err := newestMtime(dir); err == nil && cfg.now().Sub(mt) < cfg.MinIdle {
			sr.Outcome, sr.Detail = OutcomeSkipped, "recently modified"
			return sr
		}
	}

	// The header first: without archive.meta the session cannot be
	// attributed (which backend decodes it?) or resumed, so the payload
	// does not matter.
	info, err := jportal.ReadArchiveInfo(dir)
	if err != nil {
		sr.Outcome, sr.Detail = OutcomeMissingMeta, err.Error()
		if cfg.Repair {
			quarantine(cfg, &sr, id, fault.ReasonMissingMeta)
		}
		return sr
	}
	if info.Layout != jportal.LayoutChunked {
		// Batch archives have no incremental frontier to repair against;
		// their artefacts are verified at load. Count the bytes and move on.
		sr.Outcome = OutcomeClean
		return sr
	}

	// Checkpoint envelopes ride along: a session.ckpt that fails its CRC
	// seal is pure dead weight (resume falls back to a full replay), so
	// repair mode deletes it rather than leaving a trap.
	scrubCheckpoints(cfg, &sr, dir)

	st, stErr := ingest.ReadSessionState(dir)
	haveState := stErr == nil
	data, err := readLimited(filepath.Join(dir, jportal.StreamFileName), lim)
	if err != nil {
		sr.Outcome, sr.Detail = OutcomeCorrupt, "stream unreadable: "+err.Error()
		repairCorrupt(cfg, &sr, id, haveState, st)
		return sr
	}
	rep.BytesVerified += int64(len(data))

	v := walkStream(data, haveState, st)
	switch v.damage {
	case damageNone:
		if v.sealEnd > 0 {
			sr.Outcome = OutcomeClean
		} else {
			sr.Outcome = OutcomeInProgress
		}
		return sr
	case damageTrailing:
		if haveState && !v.stateOK {
			// The junk past the seal comes with a frontier that matches
			// nothing — the state itself is damaged, not just the tail.
			break
		}
		// Bytes after a verified seal: the sealed prefix is complete, the
		// tail is noise. Truncating back to the seal is loss-free.
		sr.Outcome, sr.Detail = OutcomeTornTail, v.detail
		if cfg.Repair {
			truncateSession(cfg, &sr, dir, v.sealEnd, haveState, st, true)
		}
		return sr
	case damageTornTail:
		if haveState && !v.stateOK {
			// The walk tore before reaching the durable frontier (or the
			// frontier's checksum never matched): acknowledged bytes are
			// missing or rotten. Truncating "to the frontier" would
			// zero-extend the file — this is corruption, not a torn tail.
			break
		}
		sr.Outcome, sr.Detail = OutcomeTornTail, v.detail
		if cfg.Repair {
			target := v.lastGood
			if haveState {
				// Cut to the durable frontier, not the last whole record:
				// the frontier is what the resuming client's sequence
				// numbers are anchored to (the server's restore() makes the
				// same cut).
				target = st.Size
			}
			truncateSession(cfg, &sr, dir, target, haveState, st, false)
		}
		return sr
	}
	// Corrupt — by classification, or because a torn/trailing shape came
	// with a frontier that does not check out.
	if haveState && v.stateOK && v.damageOffsetPastFrontier(st) {
		// The rot is confined to unacknowledged bytes past the durable
		// frontier — the same shape as a torn tail, with the same
		// loss-free repair.
		sr.Outcome, sr.Detail = OutcomeTornTail, v.detail+" (past the durable frontier)"
		if cfg.Repair {
			truncateSession(cfg, &sr, dir, st.Size, haveState, st, false)
		}
		return sr
	}
	sr.Outcome, sr.Detail = OutcomeCorrupt, v.detail
	if cfg.Repair {
		if tryRefetch(cfg, &sr, fetcher, id) {
			return sr
		}
		repairCorrupt(cfg, &sr, id, haveState, st)
	}
	return sr
}

// damageOffsetPastFrontier reports whether the corruption starts at or
// past the durable frontier (lastGood is the boundary before the damage).
func (v *streamVerdict) damageOffsetPastFrontier(st ingest.SessionState) bool {
	return v.lastGood >= st.Size
}

// walkStream structurally verifies a stream.jpt image: record framing,
// the seal CRC, and — when the session has a durable frontier — that the
// frontier names a boundary whose running checksum matches.
func walkStream(data []byte, haveState bool, st ingest.SessionState) streamVerdict {
	v := streamVerdict{size: int64(len(data))}
	if _, err := streamfmt.ParseHeader(data); err != nil {
		if errors.Is(err, streamfmt.ErrShort) {
			v.damage, v.detail = damageTornTail, "stream shorter than its header"
			return v
		}
		v.damage, v.detail = damageCorrupt, err.Error()
		return v
	}
	crc := crc32.Update(0, crc32.IEEETable, data[:streamfmt.HeaderLen])
	off := int64(streamfmt.HeaderLen)
	v.lastGood = off
	if haveState && off == st.Size && crc == st.CRC {
		v.stateOK = true
	}
	for off < v.size {
		n, err := streamfmt.Scan(data[off:])
		if errors.Is(err, streamfmt.ErrShort) {
			v.damage = damageTornTail
			v.detail = fmt.Sprintf("file ends mid-record at byte %d of %d", off, v.size)
			return v
		}
		if err != nil {
			v.damage = damageCorrupt
			v.detail = fmt.Sprintf("at byte %d: %v", off, err)
			return v
		}
		rec := data[off : off+int64(n)]
		if sealCRC, ok := streamfmt.SealCRC(rec); ok {
			if sealCRC != crc {
				v.damage = damageCorrupt
				v.detail = fmt.Sprintf("seal CRC %#08x does not match stream contents (%#08x)", sealCRC, crc)
				return v
			}
			off += int64(n)
			v.lastGood, v.sealEnd = off, off
			if haveState && off == st.Size && crc == st.CRC {
				v.stateOK = true
			}
			if off < v.size {
				v.damage = damageTrailing
				v.detail = fmt.Sprintf("%d bytes after the seal", v.size-off)
			}
			return v
		}
		crc = crc32.Update(crc, crc32.IEEETable, rec)
		off += int64(n)
		v.lastGood = off
		if haveState && off == st.Size && crc == st.CRC {
			v.stateOK = true
		}
	}
	// Every record framed, no seal: an in-flight upload — unless the
	// durable frontier claims bytes the file does not have, or names a
	// checksum the walk never saw.
	if haveState {
		if st.Size > v.size {
			v.damage = damageCorrupt
			v.detail = fmt.Sprintf("durable frontier at byte %d but the stream has only %d", st.Size, v.size)
			return v
		}
		if !v.stateOK {
			v.damage = damageCorrupt
			v.detail = fmt.Sprintf("durable frontier (byte %d, crc %#08x) does not lie on a matching record boundary", st.Size, st.CRC)
			return v
		}
		if st.Size < v.size {
			// Valid unacknowledged records past the frontier: the server
			// would drop them on restore; so does the scrubber.
			v.damage = damageTornTail
			v.detail = fmt.Sprintf("%d unacknowledged bytes past the durable frontier", v.size-st.Size)
			return v
		}
		if st.Sealed && v.sealEnd == 0 {
			v.damage = damageCorrupt
			v.detail = "frontier says sealed but the stream has no seal"
			return v
		}
	}
	return v
}

// truncateSession cuts the stream back to target and re-commits the
// durable frontier. sealed marks a truncation back to a verified seal
// (the archive is complete after the cut).
func truncateSession(cfg *Config, sr *SessionReport, dir string, target int64, haveState bool, st ingest.SessionState, sealed bool) {
	path := filepath.Join(dir, jportal.StreamFileName)
	if err := os.Truncate(path, target); err != nil {
		sr.Err = err
		return
	}
	if haveState && (st.Size != target || st.Sealed != (sealed || st.Sealed)) {
		st.Size = target
		if sealed {
			st.Sealed = true
		}
		// The CRC is unchanged: target is the frontier the state already
		// described, or a verified seal the walk checksummed.
		if err := ingest.WriteSessionState(dir, st); err != nil {
			sr.Err = err
			return
		}
	}
	sr.Action = ActionTruncated
}

// repairCorrupt is the no-peer fallback for a corrupt session: an
// unsealed upload is reset to its bare header (the client re-sends
// everything, and the end-to-end seal CRC guarantees the re-pushed
// archive); a sealed or stateless one has no sender coming back, so it
// is quarantined.
func repairCorrupt(cfg *Config, sr *SessionReport, id string, haveState bool, st ingest.SessionState) {
	if !cfg.Repair {
		return
	}
	dir := filepath.Join(cfg.DataDir, id)
	if haveState && !st.Sealed {
		path := filepath.Join(dir, jportal.StreamFileName)
		data, err := os.ReadFile(path)
		if err == nil {
			if _, herr := streamfmt.ParseHeader(data); herr == nil {
				if err := os.Truncate(path, streamfmt.HeaderLen); err == nil {
					if err := os.Remove(filepath.Join(dir, ingest.StateFileName)); err == nil || os.IsNotExist(err) {
						sr.Action = ActionReset
						return
					}
				}
			}
		}
	}
	quarantine(cfg, sr, id, fault.ReasonCorruptRecord)
}

// quarantine moves the session into DataDir/.quarantine and ledgers it.
func quarantine(cfg *Config, sr *SessionReport, id string, reason fault.Reason) {
	qdir := filepath.Join(cfg.DataDir, QuarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		sr.Err = err
		return
	}
	dst := filepath.Join(qdir, id)
	// A session can be quarantined at most once per id; a leftover from an
	// earlier sweep is older and strictly less useful than this copy.
	if err := os.RemoveAll(dst); err != nil {
		sr.Err = err
		return
	}
	if err := os.Rename(filepath.Join(cfg.DataDir, id), dst); err != nil {
		sr.Err = err
		return
	}
	sr.Action = ActionQuarantined
	cfg.Ledger.Add(fault.Entry{
		Reason: reason, Thread: -1, Core: -1,
		Detail: fmt.Sprintf("scrub: session %q: %s", id, sr.Detail),
	})
}

// scrubCheckpoints verifies any *.ckpt envelopes in the session dir. A
// checkpoint is an optimisation, never a correctness dependency, so a
// corrupt one is deleted in repair mode.
func scrubCheckpoints(cfg *Config, sr *SessionReport, dir string) {
	matches, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	for _, path := range matches {
		if _, err := ckpt.ReadFile(path); err != nil {
			if cfg.Repair {
				os.Remove(path)
				cfg.Logf("scrub: removed corrupt checkpoint %s: %v", path, err)
			}
			if sr.Detail == "" {
				sr.Detail = "corrupt checkpoint " + filepath.Base(path)
			}
		}
	}
}

// tryRefetch replaces a corrupt local session with a peer's sealed copy,
// replayed over the real ingest protocol (an in-process server on
// DataDir, a client push from the peer's files), so the repair exercises
// exactly the validation a live upload gets — including the seal CRC.
func tryRefetch(cfg *Config, sr *SessionReport, fetcher **peerFetcher, id string) bool {
	for _, peer := range cfg.PeerDirs {
		peerDir := filepath.Join(peer, id)
		data, err := os.ReadFile(filepath.Join(peerDir, jportal.StreamFileName))
		if err != nil {
			continue
		}
		if v := walkStream(data, false, ingest.SessionState{}); v.damage != damageNone || v.sealEnd == 0 {
			continue // peer copy unsealed or damaged itself
		}
		if *fetcher == nil {
			f, err := newPeerFetcher(cfg.DataDir)
			if err != nil {
				sr.Err = err
				return false
			}
			*fetcher = f
		}
		if err := os.RemoveAll(filepath.Join(cfg.DataDir, id)); err != nil {
			sr.Err = err
			return false
		}
		if err := (*fetcher).fetch(id, peerDir); err != nil {
			sr.Err = fmt.Errorf("refetch from %s: %w", peerDir, err)
			return false
		}
		sr.Action = ActionRefetched
		sr.Detail += "; restored from " + peerDir
		return true
	}
	return false
}

// peerFetcher is a lazily started loopback ingest server over the scrub
// target's data dir: refetches are ordinary archive pushes against it.
type peerFetcher struct {
	srv *ingest.Server
	ln  net.Listener
}

func newPeerFetcher(dataDir string) (*peerFetcher, error) {
	srv, err := ingest.NewServer(ingest.Config{DataDir: dataDir})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	return &peerFetcher{srv: srv, ln: ln}, nil
}

func (f *peerFetcher) fetch(id, peerDir string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, err := client.PushArchive(ctx, client.Options{
		Addr:      f.ln.Addr().String(),
		SessionID: id,
	}, peerDir)
	return err
}

func (f *peerFetcher) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f.srv.Shutdown(ctx)
}

// newestMtime returns the latest modification time of any file directly
// inside dir.
func newestMtime(dir string) (time.Time, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return time.Time{}, err
	}
	var newest time.Time
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		if fi.ModTime().After(newest) {
			newest = fi.ModTime()
		}
	}
	return newest, nil
}

// rateLimiter is a token bucket over read bytes: the scrubber shares its
// disk with live ingest, so verification I/O is paced, not greedy.
type rateLimiter struct {
	perSec int64
	sleep  func(time.Duration)
	debt   int64
}

func newRateLimiter(perSec int64, sleep func(time.Duration)) *rateLimiter {
	return &rateLimiter{perSec: perSec, sleep: sleep}
}

// take charges n bytes against the budget, sleeping once a full second
// of budget has been consumed.
func (l *rateLimiter) take(n int64) {
	if l == nil || l.perSec <= 0 {
		return
	}
	l.debt += n
	for l.debt >= l.perSec {
		l.sleep(time.Second)
		l.debt -= l.perSec
	}
}

// scrubReadChunk is the unit of paced verification I/O.
const scrubReadChunk = 64 << 10

// readLimited reads path through the limiter in scrubReadChunk pieces.
func readLimited(path string, lim *rateLimiter) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, scrubReadChunk)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		lim.take(int64(n))
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// FormatReport renders a scrub report deterministically.
func FormatReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scrub: %d sessions, %d bytes verified\n", rep.Scanned, rep.BytesVerified)
	fmt.Fprintf(&b, "  clean %d  in-progress %d  damaged %d\n", rep.Clean, rep.InProgress, rep.Damaged)
	fmt.Fprintf(&b, "  repaired: truncated %d  refetched %d  reset %d  quarantined %d\n",
		rep.TornRepaired, rep.Refetched, rep.Reset, rep.Quarantined)
	for _, s := range rep.Sessions {
		if s.Outcome == OutcomeClean || s.Outcome == OutcomeInProgress {
			continue
		}
		fmt.Fprintf(&b, "  %-24s %-12s %-12s %s\n", s.ID, s.Outcome, s.Action, s.Detail)
		if s.Err != nil {
			fmt.Fprintf(&b, "  %-24s repair error: %v\n", "", s.Err)
		}
	}
	return b.String()
}
