package conc

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, w := range []int{0, 1, 2, 8, 64} {
		n := 1000
		marks := make([]int32, n)
		ParallelFor(Workers(w), n, func(i int) { atomic.AddInt32(&marks[i], 1) })
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, m)
			}
		}
	}
}

func TestParallelForEmptyAndNegative(t *testing.T) {
	ran := false
	ParallelFor(4, 0, func(int) { ran = true })
	ParallelFor(4, -1, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty index space")
	}
}

func TestParallelWorkStatePerWorker(t *testing.T) {
	var states atomic.Int32
	ParallelWork(4, 100, func() int { return int(states.Add(1)) },
		func(s int, i int) {
			if s < 1 || s > 4 {
				t.Errorf("state %d outside worker range", s)
			}
		})
	if got := states.Load(); got < 1 || got > 4 {
		t.Fatalf("created %d states, want 1..4", got)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count not honoured")
	}
	if Workers(0) < 1 {
		t.Error("default must be at least 1")
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("a"), errors.New("b")
	if FirstError([]error{nil, nil}) != nil {
		t.Error("nil slice of nils")
	}
	if FirstError([]error{nil, e1, e2}) != e1 {
		t.Error("want first error in index order")
	}
}
