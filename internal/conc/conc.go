// Package conc provides the bounded worker-pool primitives the offline
// phase parallelises on. Every helper dispatches a dense index space to at
// most `workers` goroutines and requires the callback to write only into
// its own slot (results[i]), so the output is deterministic — identical for
// any worker count, independent of goroutine scheduling.
package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n when positive, otherwise
// GOMAXPROCS (the "use every core" default).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor runs fn(i) for every i in [0, n) on up to `workers`
// goroutines (clamped to n; workers <= 1 runs inline). fn must be safe to
// call concurrently for distinct i and must not depend on call order.
func ParallelFor(workers, n int, fn func(i int)) {
	ParallelWork(workers, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) { fn(i) })
}

// ParallelWork is ParallelFor with per-worker state: each worker goroutine
// calls newState once and passes the value to every fn it runs. Use it to
// thread scratch buffers (e.g. core.MatchScratch) through a fan-out without
// per-item allocation.
func ParallelWork[S any](workers, n int, newState func() S, fn func(s S, i int)) {
	ParallelWorkRelease(workers, n, newState, nil, fn)
}

// ParallelWorkRelease is ParallelWork with a release hook: each worker
// calls release on its state after finishing its share, so pooled state
// (scratch buffers) can be recycled across fan-outs instead of being
// reallocated — and re-zeroed — every call. release may be nil.
func ParallelWorkRelease[S any](workers, n int, newState func() S, release func(S), fn func(s S, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := newState()
		for i := 0; i < n; i++ {
			fn(s, i)
		}
		if release != nil {
			release(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			s := newState()
			if release != nil {
				defer release(s)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(s, i)
			}
		}()
	}
	wg.Wait()
}

// FirstError returns the first non-nil error in index order (the
// deterministic aggregate for a fanned-out loop that can fail).
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
