// Package etrace is a RISC-V E-Trace-style trace source: the second
// backend behind the TraceSource abstraction (internal/source), proving the
// neutral layers — stitching, decoding, reconstruction, recovery, archives
// — are ISA-agnostic.
//
// The model follows the E-Trace (Efficient Trace for RISC-V) encoder's
// shape rather than Intel PT's:
//
//   - Branch outcomes pack into variable-length branch-map packets of up to
//     31 branches (PT's TNT carries up to 47), sized 1 header byte plus one
//     payload byte per 8 branches.
//   - Uninferable (indirect) targets are reported differentially: the wire
//     carries only the bytes in which the address differs from the last one
//     reported, at byte granularity. The neutral Packet keeps the absolute
//     address — differential reporting is a wire-size model, exactly like
//     PT's suffix compression in internal/pt.
//   - Periodic synchronisation packets carry the full timestamp and reset
//     the address compression, so a decoder (or a chunk boundary) can
//     resynchronise without history.
//
// The collector mirrors internal/pt's structure — bounded per-core ring,
// paced exporter, loss episodes with hysteresis and resync preambles — so
// the two backends differ only where the ISAs do: packet vocabulary and
// wire-size model.
package etrace

import "jportal/internal/source"

// Kind is this source's packet-kind space.
type Kind = source.Kind

// Packet kinds. The numbering is local to this source; only Traits gives
// them meaning.
const (
	// KTime carries a timestamp update (E-Trace "time" packet).
	KTime Kind = iota
	// KSync is the periodic synchronisation packet: full timestamp,
	// compression reset, a safe resume point after a malformed packet.
	KSync
	// KStart reports tracing turning on, with the full start address
	// (format 3 "start of tracing" in E-Trace terms).
	KStart
	// KStop reports tracing turning off.
	KStop
	// KBranch is the variable-length branch map: up to MaxBranchBits
	// packed taken/not-taken outcomes.
	KBranch
	// KAddr reports an uninferable (indirect) jump target,
	// differentially compressed on the wire.
	KAddr
	// KTrap reports the source address of a trap or other asynchronous
	// transfer; the next KAddr is its target (the pairing PT expresses
	// as FUP+TIP).
	KTrap
)

// MaxBranchBits is the branch-map capacity: E-Trace packs at most 31
// branches per packet.
const MaxBranchBits = 31

var traits = &source.Traits{
	Name:    ID,
	MaxKind: KTrap,
	// Sync packets carry the full timestamp, so they are time-bearing too.
	TimeMask:   1<<KTime | 1<<KSync,
	SyncMask:   1 << KSync,
	TNTMask:    1 << KBranch,
	MaxTNTBits: MaxBranchBits,
	KindNames:  []string{"TIME", "SYNC", "START", "STOP", "BMAP", "ADDR", "TRAP"},
}

// Traits describes this source's packet vocabulary for the neutral layers.
func Traits() *source.Traits { return traits }
