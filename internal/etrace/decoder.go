package etrace

import (
	"jportal/internal/meta"
	"jportal/internal/source"
)

// ID is this source's registry name.
const ID = "riscv-etrace"

// Decoder decodes one E-Trace packet stream (typically one thread's
// stitched stream). All walking machinery — blob walking, template
// classification, fault and desync bookkeeping, checkpointing — lives in
// the embedded source.Walker; this type only reduces the E-Trace packet
// vocabulary to the Walker's driver methods, exactly as ptdecode does for
// PT's.
type Decoder struct {
	source.Walker
}

// New creates a decoder over the given metadata snapshot.
func New(snap *meta.Snapshot) *Decoder {
	d := &Decoder{}
	d.Init(snap)
	return d
}

// Decode processes a whole item stream and returns the events. The
// returned slice aliases the decoder's reused output buffer: it is valid
// until the next Decode/DecodeChunk/Flush call on this decoder.
func (d *Decoder) Decode(items []source.Item) []source.Event {
	d.Begin()
	for i := range items {
		d.Feed(&items[i])
	}
	d.FlushEnd()
	return d.Deliver()
}

// DecodeChunk processes one chunk of an item stream and returns the events
// decoded so far; walking state carries across calls (see
// ptdecode.DecodeChunk for the chunking contract).
func (d *Decoder) DecodeChunk(items []source.Item) []source.Event {
	d.Begin()
	for i := range items {
		d.Feed(&items[i])
	}
	return d.Deliver()
}

// Flush terminates the stream: the pending JIT instruction range (if any)
// is emitted. Call once after the last DecodeChunk.
func (d *Decoder) Flush() []source.Event {
	d.Begin()
	d.FlushEnd()
	return d.Deliver()
}

// Feed processes one trace item: the E-Trace packet vocabulary reduced to
// the Walker's driver methods. The branch-map length check happens before
// any bit consumption, so a hostile length field never drives the bit
// loop.
func (d *Decoder) Feed(it *source.Item) {
	if it.Gap {
		d.Gap(it)
		return
	}
	p := &it.Packet
	if k, bad := traits.ClassifyPacket(p); bad {
		d.Fault(k, p)
		return
	}
	if d.Skipping() && p.Kind != KSync {
		d.SkipPacket(p.WireLen)
		return
	}
	switch p.Kind {
	case KSync:
		// Synchronisation point: safe to resume after a malformed packet,
		// and it carries the full timestamp itself.
		d.Sync()
		d.Time(p.TSC)
	case KTime:
		d.Time(p.TSC)
	case KStart:
		d.Enable(p.IP)
	case KStop:
		d.Disable()
	case KBranch:
		d.TNTBits(p.Bits, int(p.NBits))
	case KTrap:
		// A trap-source packet arms the async-transfer pairing: the next
		// KAddr is the target of the trap (or, after data loss, the packet
		// anchors the branch bits that follow).
		d.ArmAnchor(p.IP)
	case KAddr:
		d.Tip(p.IP)
	}
	if p.Kind != KTrap && p.Kind != KTime && p.Kind != KSync {
		d.Unarm()
	}
}

// etSource is the RISC-V E-Trace TraceSource: this package's collector and
// decoder behind the neutral interface.
type etSource struct{}

func (etSource) ID() string             { return ID }
func (etSource) Traits() *source.Traits { return traits }
func (etSource) NewCollector(cfg source.CollectorConfig, ncores int) source.Collector {
	return NewCollector(cfg, ncores)
}
func (etSource) NewDecoder(snap *meta.Snapshot) source.Decoder { return New(snap) }

func init() { source.Register(etSource{}) }
