package etrace

import "jportal/internal/source"

// Packet is the neutral packet this source fills.
type Packet = source.Packet

// encoder turns logical trace events into E-Trace-style packets, applying
// the format's compression: branch outcomes pack into variable-length
// branch maps, and reported addresses are differentially compressed at
// byte granularity against the last reported address.
type encoder struct {
	pendingBits  uint64
	pendingNBits uint8
	lastAddr     uint64
	haveLastAddr bool
}

// wire-format sizing.
const (
	// syncWireLen models the synchronisation packet: header, full
	// timestamp and context fields.
	syncWireLen = 14
	// timeWireLen models a (compressed) full-width timestamp report.
	timeWireLen = 6
)

// addrWireLen computes the encoded size of an address-bearing packet:
// E-Trace sends the differential address — only the bytes in which the
// address differs from the last reported one — at byte granularity (PT's
// suffix compression snaps to 2/4/6/8 bytes).
func (e *encoder) addrWireLen(addr uint64) uint8 {
	if !e.haveLastAddr {
		return 1 + 8
	}
	diff := addr ^ e.lastAddr
	var n uint8 = 1 // a same-address report still spends one payload byte
	for diff>>(8*uint(n)) != 0 {
		n++
	}
	return 1 + n
}

// flushBranches converts the pending branch bits into a branch-map packet,
// or returns false if none are pending. The wire length is one header byte
// plus one payload byte per 8 branches.
func (e *encoder) flushBranches() (Packet, bool) {
	if e.pendingNBits == 0 {
		return Packet{}, false
	}
	p := Packet{
		Kind:    KBranch,
		Bits:    e.pendingBits,
		NBits:   e.pendingNBits,
		WireLen: 1 + (e.pendingNBits+7)/8,
	}
	e.pendingBits, e.pendingNBits = 0, 0
	return p, true
}

// branch appends one branch outcome; it returns a completed packet when
// the map fills to MaxBranchBits.
func (e *encoder) branch(taken bool) (Packet, bool) {
	if taken {
		e.pendingBits |= 1 << uint(e.pendingNBits)
	}
	e.pendingNBits++
	if e.pendingNBits == MaxBranchBits {
		return e.flushBranches()
	}
	return Packet{}, false
}

// addr builds an address-bearing packet of the given kind, updating
// compression state. The neutral Packet carries the absolute address; the
// differential encoding shows up only in WireLen.
func (e *encoder) addr(kind Kind, a uint64) Packet {
	p := Packet{Kind: kind, IP: a, WireLen: e.addrWireLen(a)}
	e.lastAddr = a
	e.haveLastAddr = true
	return p
}

// time builds a timestamp packet.
func (e *encoder) time(t uint64) Packet {
	return Packet{Kind: KTime, TSC: t, WireLen: timeWireLen}
}

// sync builds a synchronisation packet carrying the full timestamp and
// resets address compression — decoders resynchronise here without
// history.
func (e *encoder) sync(t uint64) Packet {
	e.haveLastAddr = false
	return Packet{Kind: KSync, TSC: t, WireLen: syncWireLen}
}

// reset drops all compression state (used after data loss).
func (e *encoder) reset() {
	e.pendingBits, e.pendingNBits = 0, 0
	e.haveLastAddr = false
}
