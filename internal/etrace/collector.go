package etrace

import "jportal/internal/source"

// Config is the neutral collector configuration (shared by every source).
type Config = source.CollectorConfig

// Item and CoreTrace are the neutral stream types this collector emits.
type (
	Item      = source.Item
	CoreTrace = source.CoreTrace
)

// Collector models per-core E-Trace hardware plus the exporter thread: it
// accepts logical branch events from the VM, encodes them into E-Trace
// packets, stores them in a bounded ring, and drains the ring at a bounded
// rate. Structure mirrors internal/pt's collector; only the packet
// vocabulary and wire-size model differ.
type Collector struct {
	cfg   Config
	cores []coreState

	// GenBytes is the total bytes generated (exported + lost).
	GenBytes uint64

	sink      source.ChunkSink
	sinkFlush int
}

type coreState struct {
	enc          encoder
	ring         ring
	trace        CoreTrace
	lastTSC      uint64
	lastDrainTSC uint64
	sinceSync    uint64
	drainMilli   uint64
	lastGapEnd   uint64
	// needResync requests a sync preamble before the next packet after a
	// loss episode.
	needResync bool
	exported   uint64
	pendingOut []Item
}

type ring struct {
	capBytes  uint64
	usedBytes uint64
	q         []Item
	inLoss    bool
	lossStart uint64
	lostBytes uint64
	lostBits  uint64
}

// NewCollector creates a collector for ncores cores.
func NewCollector(cfg Config, ncores int) *Collector {
	c := &Collector{cfg: cfg, cores: make([]coreState, ncores)}
	for i := range c.cores {
		c.cores[i].ring.capBytes = cfg.BufBytes
	}
	return c
}

// NumCores returns the core count.
func (c *Collector) NumCores() int { return len(c.cores) }

// SetSink switches the collector to streaming export (source.Collector).
func (c *Collector) SetSink(flushItems int, sink source.ChunkSink) {
	if flushItems <= 0 {
		flushItems = source.DefaultSinkFlushItems
	}
	c.sink = sink
	c.sinkFlush = flushItems
}

// push tries to enqueue p on core cs; on overflow it records/extends a
// loss episode with the same hysteresis as the PT model (the exporter must
// drain below the resume threshold before packets flow again).
func (c *Collector) push(cs *coreState, p Packet, tsc uint64) {
	r := &cs.ring
	full := r.usedBytes+uint64(p.WireLen) > r.capBytes
	resumeAt := r.capBytes * uint64(c.cfg.ResumePercent) / 100
	if full || (r.inLoss && r.usedBytes > resumeAt) {
		if !r.inLoss {
			r.inLoss = true
			r.lossStart = tsc
			if r.lossStart < cs.lastGapEnd {
				r.lossStart = cs.lastGapEnd
			}
			r.lostBytes = 0
		}
		r.lostBytes += uint64(p.WireLen)
		c.GenBytes += uint64(p.WireLen)
		return
	}
	if r.inLoss {
		c.closeGap(cs, tsc)
	}
	if cs.needResync {
		cs.needResync = false
		// One sync packet is the whole preamble: unlike PT's PSB+TSC pair,
		// the E-Trace sync carries the full timestamp itself.
		sp := cs.enc.sync(tsc)
		cs.lastTSC = tsc
		cs.sinceSync = 0
		r.q = append(r.q, Item{Packet: sp})
		r.usedBytes += uint64(sp.WireLen)
		c.GenBytes += uint64(sp.WireLen)
		// Re-encode the packet: compression state was reset, so an
		// address-bearing packet needs its full width.
		if p.Kind == KAddr || p.Kind == KTrap || p.Kind == KStart || p.Kind == KStop {
			p = cs.enc.addr(p.Kind, p.IP)
		}
	}
	r.q = append(r.q, Item{Packet: p})
	r.usedBytes += uint64(p.WireLen)
	c.GenBytes += uint64(p.WireLen)
	cs.sinceSync += uint64(p.WireLen)
}

// closeGap records the pending loss episode ending at endTSC and arms the
// resync preamble.
func (c *Collector) closeGap(cs *coreState, endTSC uint64) {
	r := &cs.ring
	if endTSC <= r.lossStart {
		endTSC = r.lossStart + 1
	}
	r.q = append(r.q, Item{
		Gap: true, LostBytes: r.lostBytes + (r.lostBits+7)/8,
		GapStart: r.lossStart, GapEnd: endTSC,
	})
	cs.lastGapEnd = endTSC
	r.inLoss = false
	r.lostBits = 0
	cs.enc.reset()
	cs.needResync = true
}

// housekeeping emits periodic time and sync packets before a payload
// packet.
func (c *Collector) housekeeping(cs *coreState, tsc uint64) {
	if tsc-cs.lastTSC >= c.cfg.TSCPeriodCycles {
		if p, ok := cs.enc.flushBranches(); ok {
			c.push(cs, p, tsc)
		}
		cs.lastTSC = tsc
		c.push(cs, cs.enc.time(tsc), tsc)
	}
	if cs.sinceSync >= c.cfg.PSBPeriodBytes {
		if p, ok := cs.enc.flushBranches(); ok {
			c.push(cs, p, tsc)
		}
		cs.sinceSync = 0
		cs.lastTSC = tsc
		c.push(cs, cs.enc.sync(tsc), tsc)
	}
}

// flushPending flushes buffered branch bits (before any non-branch packet,
// to preserve event order).
func (c *Collector) flushPending(cs *coreState, tsc uint64) {
	if p, ok := cs.enc.flushBranches(); ok {
		c.push(cs, p, tsc)
	}
}

// PGE records tracing turning on at ip (source.Collector).
func (c *Collector) PGE(core int, ip, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	c.flushPending(cs, tsc)
	c.push(cs, cs.enc.addr(KStart, ip), tsc)
}

// PGD records tracing turning off (source.Collector).
func (c *Collector) PGD(core int, ip, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	c.flushPending(cs, tsc)
	c.push(cs, cs.enc.addr(KStop, ip), tsc)
}

// TNT records a conditional-branch outcome at branchAddr (source.Collector).
func (c *Collector) TNT(core int, branchAddr uint64, taken bool, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	if cs.ring.inLoss {
		// Try to end the loss episode with a trap-source packet anchoring
		// the branch bits that follow; if the buffer is still full the bit
		// itself is lost.
		c.push(cs, cs.enc.addr(KTrap, branchAddr), tsc)
		if cs.ring.inLoss {
			cs.ring.lostBits++
			return
		}
	} else if cs.needResync {
		// After a loss the decoder cannot attribute raw branch bits; emit
		// an anchor carrying the branch address first so decoding resumes
		// here (the push path prepends the sync preamble).
		c.push(cs, cs.enc.addr(KTrap, branchAddr), tsc)
	}
	if p, full := cs.enc.branch(taken); full {
		c.push(cs, p, tsc)
	}
}

// TIP records an indirect transfer to target (source.Collector).
func (c *Collector) TIP(core int, target, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	c.flushPending(cs, tsc)
	c.push(cs, cs.enc.addr(KAddr, target), tsc)
}

// FUP records the source IP of an asynchronous event (source.Collector).
func (c *Collector) FUP(core int, ip, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	c.flushPending(cs, tsc)
	c.push(cs, cs.enc.addr(KTrap, ip), tsc)
}

// SwitchMark records a context-switch boundary as a forced timestamp
// (source.Collector).
func (c *Collector) SwitchMark(core int, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.flushPending(cs, tsc)
	cs.lastTSC = tsc
	c.push(cs, cs.enc.time(tsc), tsc)
}

// Advance drains the core's ring according to the export bandwidth and the
// elapsed cycles (source.Collector).
func (c *Collector) Advance(core int, tsc uint64) {
	cs := &c.cores[core]
	if tsc <= cs.lastDrainTSC {
		return
	}
	prev := cs.lastDrainTSC
	cs.drainMilli += (tsc - prev) * c.cfg.DrainBytesPerKCycle
	cs.lastDrainTSC = tsc
	budget := cs.drainMilli / 1000
	cs.drainMilli %= 1000
	r := &cs.ring
	before := r.usedBytes
	n := 0
	for n < len(r.q) {
		it := &r.q[n]
		if it.Gap {
			c.export(core, cs, *it)
			n++
			continue
		}
		w := uint64(it.Packet.WireLen)
		if budget < w {
			break
		}
		budget -= w
		r.usedBytes -= w
		c.export(core, cs, *it)
		n++
	}
	r.q = r.q[n:]
	resumeAt := r.capBytes * uint64(c.cfg.ResumePercent) / 100
	if r.inLoss && r.usedBytes <= resumeAt {
		end := tsc
		if drained := before - r.usedBytes; drained > 0 && before > resumeAt {
			needed := before - resumeAt
			end = prev + (tsc-prev)*needed/drained
		}
		c.closeGap(cs, end)
	}
}

// export hands one drained item onward: appended to the accumulated trace
// in batch mode, buffered toward the next sink chunk in streaming mode.
func (c *Collector) export(core int, cs *coreState, it Item) {
	if !it.Gap {
		cs.exported += uint64(it.Packet.WireLen)
	}
	if c.sink == nil {
		cs.trace.Items = append(cs.trace.Items, it)
		return
	}
	cs.pendingOut = append(cs.pendingOut, it)
	if len(cs.pendingOut) >= c.sinkFlush {
		// Cut chunks just before a sync packet so each chunk the stages
		// exchange is a self-contained sync-to-sync decode unit.
		if !it.Gap && it.Packet.Kind == KSync && len(cs.pendingOut) > 1 {
			sp := cs.pendingOut[len(cs.pendingOut)-1]
			cs.pendingOut = cs.pendingOut[:len(cs.pendingOut)-1]
			c.flushSink(core, cs)
			cs.pendingOut = append(cs.pendingOut, sp)
		} else if len(cs.pendingOut) >= c.sinkFlush*4 {
			c.flushSink(core, cs)
		}
	}
}

func (c *Collector) flushSink(core int, cs *coreState) {
	if len(cs.pendingOut) == 0 {
		return
	}
	items := cs.pendingOut
	cs.pendingOut = nil
	c.sink(core, items)
}

// Finish flushes everything and returns the per-core traces
// (source.Collector).
func (c *Collector) Finish(tsc uint64) []CoreTrace {
	out := make([]CoreTrace, len(c.cores))
	for i := range c.cores {
		cs := &c.cores[i]
		if p, ok := cs.enc.flushBranches(); ok {
			c.push(cs, p, tsc)
		}
		if cs.ring.inLoss {
			c.closeGap(cs, tsc)
			cs.needResync = false
		}
		for _, it := range cs.ring.q {
			c.export(i, cs, it)
		}
		cs.ring.q = nil
		cs.ring.usedBytes = 0
		if c.sink != nil {
			c.flushSink(i, cs)
		}
		cs.trace.Core = i
		out[i] = cs.trace
	}
	return out
}

// GeneratedBytes returns the total bytes generated (exported + lost).
func (c *Collector) GeneratedBytes() uint64 { return c.GenBytes }

// ExportedBytes returns total payload bytes drained so far across cores.
func (c *Collector) ExportedBytes() uint64 {
	var n uint64
	for i := range c.cores {
		n += c.cores[i].exported
	}
	return n
}
