package etrace

import (
	"bytes"
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/ptdecode"
	"jportal/internal/source"
)

// buildWorld mirrors ptdecode's test world: a template table entry per
// opcode and two tiny compiled blobs (A: linear, jcc over A2, ret; B:
// linear, call A, linear, ret).
func buildWorld(t testing.TB) *meta.Snapshot {
	t.Helper()
	tt := meta.NewTemplateTable()
	for op := 0; op < bytecode.NumOpcodes; op++ {
		start := meta.TemplateBase + uint64(op)*0x100
		tt.Add(bytecode.Opcode(op), meta.Range{Start: start, End: start + 0x80})
	}
	snap := meta.NewSnapshot(tt)
	snap.Stubs = meta.Stubs{
		InterpEntry: meta.Range{Start: meta.CodeCacheBase - 0x400, End: meta.CodeCacheBase - 0x3c0},
		RetEntry:    meta.Range{Start: meta.CodeCacheBase - 0x300, End: meta.CodeCacheBase - 0x2c0},
		Unwind:      meta.Range{Start: meta.CodeCacheBase - 0x200, End: meta.CodeCacheBase - 0x1c0},
		ThreadExit:  meta.Range{Start: meta.CodeCacheBase - 0x100, End: meta.CodeCacheBase - 0xc0},
	}
	baseA := meta.CodeCacheBase
	aA := isa.NewAssembler("A", baseA)
	aA.Emit(isa.Linear, 4, 0, "A0")
	jcc := aA.Emit(isa.CondBranch, 6, 0, "A1")
	aA.Emit(isa.Linear, 4, 0, "A2")
	retA := aA.Emit(isa.Ret, 1, 0, "A3")
	aA.PatchTarget(jcc, retA)
	codeA := aA.Finish()

	baseB := meta.CodeCacheBase + 0x1000
	aB := isa.NewAssembler("B", baseB)
	aB.Emit(isa.Linear, 4, 0, "B0")
	aB.Emit(isa.Call, 5, baseA, "B1")
	aB.Emit(isa.Linear, 4, 0, "B2")
	aB.Emit(isa.Ret, 1, 0, "B3")
	codeB := aB.Finish()

	mk := func(root bytecode.MethodID, code *isa.Blob) *meta.CompiledMethod {
		var dbg []meta.DebugRecord
		for i, ins := range code.Instrs {
			dbg = append(dbg, meta.DebugRecord{
				Addr:   ins.Addr,
				Frames: []meta.Frame{{Method: root, PC: int32(i)}},
			})
		}
		return &meta.CompiledMethod{Root: root, Tier: 1, Code: code, Debug: dbg}
	}
	snap.Export(mk(0, codeA))
	snap.Export(mk(1, codeB))
	return snap
}

func pkt(kind Kind, ip uint64) Item {
	return Item{Packet: Packet{Kind: kind, IP: ip, WireLen: 4}}
}

func bmap(bits ...bool) Item {
	p := Packet{Kind: KBranch, NBits: uint8(len(bits)), WireLen: 2}
	for i, b := range bits {
		if b {
			p.Bits |= 1 << uint(i)
		}
	}
	return Item{Packet: p}
}

// TestWalkBranchMap checks the decoder walks a compiled blob consuming
// branch-map bits, mirroring ptdecode's walk tests: not-taken visits every
// instruction (4), taken skips A2 (3 walked, index 2 never appears).
func TestWalkBranchMap(t *testing.T) {
	snap := buildWorld(t)
	base := meta.CodeCacheBase
	retStub := snap.Stubs.RetEntry.Start
	for _, tc := range []struct {
		taken bool
		total int
	}{
		{false, 4}, // falls through: A0,A1,A2,A3
		{true, 3},  // jcc taken: A0,A1,A3
	} {
		d := New(snap)
		ev := d.Decode([]Item{pkt(KAddr, base), bmap(tc.taken), pkt(KAddr, retStub)})
		total := 0
		for _, e := range ev {
			if e.Kind == source.EvJITRange {
				total += e.Last - e.First
				for i := e.First; i < e.Last; i++ {
					if tc.taken && i == 2 {
						t.Error("A2 executed on taken path")
					}
				}
			}
		}
		if total != tc.total {
			t.Errorf("taken=%v: walked %d instrs, want %d (events %v)", tc.taken, total, tc.total, ev)
		}
		if d.Desyncs != 0 {
			t.Errorf("taken=%v: desyncs %d", tc.taken, d.Desyncs)
		}
	}
}

// TestTemplateDispatch checks interpreter-template addresses decode to
// dispatch events carrying the opcode, with branch bits attributed to the
// conditional template.
func TestTemplateDispatch(t *testing.T) {
	snap := buildWorld(t)
	tmpl := snap.Templates
	d := New(snap)
	ev := d.Decode([]Item{
		pkt(KAddr, tmpl.Entry(bytecode.ILOAD)),
		pkt(KAddr, tmpl.Entry(bytecode.IFEQ)),
		bmap(true),
		pkt(KAddr, tmpl.Entry(bytecode.IRETURN)),
	})
	var ops []bytecode.Opcode
	var dirs []bool
	for _, e := range ev {
		switch e.Kind {
		case source.EvTemplate:
			ops = append(ops, e.Op)
		case source.EvTemplateTNT:
			dirs = append(dirs, e.Taken)
			if e.Op != bytecode.IFEQ {
				t.Errorf("branch bit attributed to %v", e.Op)
			}
		}
	}
	if len(ops) != 3 || ops[0] != bytecode.ILOAD || ops[1] != bytecode.IFEQ || ops[2] != bytecode.IRETURN {
		t.Errorf("ops: %v", ops)
	}
	if len(dirs) != 1 || !dirs[0] {
		t.Errorf("dirs: %v", dirs)
	}
}

// TestTrapAddrPairDoesNotDesync checks the KTrap→KAddr async pairing: the
// address lands without a desync, exactly like PT's FUP→TIP.
func TestTrapAddrPairDoesNotDesync(t *testing.T) {
	snap := buildWorld(t)
	base := meta.CodeCacheBase
	d := New(snap)
	d.Decode([]Item{
		pkt(KStart, base),
		pkt(KTrap, base+4),
		pkt(KAddr, base+0x1000),
		pkt(KStop, 0),
	})
	if d.Desyncs != 0 {
		t.Fatalf("desyncs = %d, want 0", d.Desyncs)
	}
}

// TestMalformedPacketSkipsToSync checks fault handling: an unknown kind
// desynchronises the decoder, packets are skipped until the next KSync, and
// the fault is recorded.
func TestMalformedPacketSkipsToSync(t *testing.T) {
	snap := buildWorld(t)
	base := meta.CodeCacheBase
	d := New(snap)
	d.Decode([]Item{
		pkt(KStart, base),
		{Packet: Packet{Kind: Kind(0x7f), WireLen: 4}}, // malformed
		pkt(KAddr, base+0x1000),                        // must be skipped
		{Packet: Packet{Kind: KSync, TSC: 99, WireLen: syncWireLen}},
		pkt(KStart, base),
	})
	if d.FaultCount != 1 {
		t.Fatalf("FaultCount = %d, want 1", d.FaultCount)
	}
	if d.SkippedPackets == 0 {
		t.Fatalf("no packets skipped before resync")
	}
	if d.TSC() != 99 {
		t.Fatalf("TSC after sync = %d, want 99 (sync carries time)", d.TSC())
	}
}

// controlFlow filters decode events down to the backend-independent
// control-flow stream (time events depend on each source's sync cadence).
func controlFlow(events []source.Event) []source.Event {
	var out []source.Event
	for _, e := range events {
		if e.Kind == source.EvTime {
			continue
		}
		e.TSC = 0 // timestamps track each backend's time-packet cadence
		out = append(out, e)
	}
	return out
}

// TestLosslessDecodeMatchesPT drives the PT and E-Trace collectors with an
// identical logical event sequence (buffers big enough that nothing is
// lost) and checks both backends decode to the same control-flow events —
// the heart of the ISA-agnostic contract.
func TestLosslessDecodeMatchesPT(t *testing.T) {
	snap := buildWorld(t)
	base := meta.CodeCacheBase

	cfg := source.DefaultCollectorConfig()
	drive := func(col source.Collector) []source.CoreTrace {
		tsc := uint64(100)
		col.PGE(0, base, tsc)
		for i := 0; i < 200; i++ {
			tsc += 7
			col.TNT(0, base+4, i%3 == 0, tsc)
			if i%5 == 0 {
				tsc += 3
				col.TIP(0, base+0x1000, tsc)
				tsc += 3
				col.TIP(0, base, tsc)
			}
			if i%31 == 0 {
				col.SwitchMark(0, tsc)
			}
		}
		col.FUP(0, base+4, tsc+1)
		col.TIP(0, base+0x1000, tsc+2)
		col.PGD(0, 0, tsc+3)
		return col.Finish(tsc + 10)
	}

	ptTr := drive(pt.NewCollector(cfg, 1))
	etTr := drive(NewCollector(cfg, 1))
	for _, tr := range [][]source.CoreTrace{ptTr, etTr} {
		if tr[0].LostBytes() != 0 {
			t.Fatalf("expected lossless run, lost %d bytes", tr[0].LostBytes())
		}
	}

	ptEv := controlFlow(ptdecode.New(snap).Decode(ptTr[0].Items))
	etEv := controlFlow(New(snap).Decode(etTr[0].Items))
	if len(ptEv) != len(etEv) {
		t.Fatalf("event counts differ: pt %d, etrace %d", len(ptEv), len(etEv))
	}
	for i := range ptEv {
		if ptEv[i] != etEv[i] {
			t.Fatalf("event %d differs:\n  pt     %+v\n  etrace %+v", i, ptEv[i], etEv[i])
		}
	}

	// The wire models differ: E-Trace's differential addresses and packed
	// branch maps should not be larger than PT's encoding of the same run.
	var ptBytes, etBytes uint64
	for i := range ptTr[0].Items {
		ptBytes += uint64(ptTr[0].Items[i].Packet.WireLen)
	}
	for i := range etTr[0].Items {
		etBytes += uint64(etTr[0].Items[i].Packet.WireLen)
	}
	t.Logf("wire bytes: pt=%d etrace=%d", ptBytes, etBytes)
	if etBytes > ptBytes {
		t.Errorf("etrace encoding (%d B) larger than PT (%d B)", etBytes, ptBytes)
	}
}

// TestWireRoundTrip checks the neutral wire format round-trips E-Trace
// traces under this source's traits.
func TestWireRoundTrip(t *testing.T) {
	cfg := source.DefaultCollectorConfig()
	col := NewCollector(cfg, 1)
	col.PGE(0, meta.CodeCacheBase, 1)
	for i := 0; i < 64; i++ {
		col.TNT(0, meta.CodeCacheBase+4, i%2 == 0, uint64(10+i*9))
	}
	tr := col.Finish(1000)[0]

	var buf bytes.Buffer
	if err := source.WriteTrace(&buf, &tr); err != nil {
		t.Fatal(err)
	}
	got, err := source.ReadTrace(bytes.NewReader(buf.Bytes()), Traits())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(tr.Items) {
		t.Fatalf("round-trip items %d, want %d", len(got.Items), len(tr.Items))
	}
	for i := range got.Items {
		if got.Items[i] != tr.Items[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, got.Items[i], tr.Items[i])
		}
	}
}

// TestTraitsValidation pins this source's bounds: branch maps beyond
// MaxBranchBits and unknown kinds are malformed.
func TestTraitsValidation(t *testing.T) {
	cases := []struct {
		it  Item
		bad bool
	}{
		{Item{Packet: Packet{Kind: KBranch, NBits: MaxBranchBits}}, false},
		{Item{Packet: Packet{Kind: KBranch, NBits: MaxBranchBits + 1}}, true},
		{Item{Packet: Packet{Kind: KTrap}}, false},
		{Item{Packet: Packet{Kind: Kind(0x40)}}, true},
		{Item{Gap: true, GapStart: 5, GapEnd: 3}, true},
	}
	for i, tc := range cases {
		err := Traits().ValidateItem(&tc.it)
		if (err != nil) != tc.bad {
			t.Errorf("case %d: ValidateItem = %v, want bad=%v", i, err, tc.bad)
		}
	}
}

// FuzzDecode mirrors ptdecode's hardening contract for the E-Trace
// backend: arbitrary wire bytes must never panic the trace reader or the
// decoder, and every accepted item must decode without invariant
// violations (faults and desyncs are the contract for garbage, panics are
// not).
func FuzzDecode(f *testing.F) {
	cfg := source.DefaultCollectorConfig()
	col := NewCollector(cfg, 1)
	col.PGE(0, meta.CodeCacheBase, 1)
	for i := 0; i < 40; i++ {
		col.TNT(0, meta.CodeCacheBase+4, i%2 == 0, uint64(10+i*9))
		if i%7 == 0 {
			col.TIP(0, meta.CodeCacheBase+0x1000, uint64(11+i*9))
			col.TIP(0, meta.CodeCacheBase, uint64(12+i*9))
		}
	}
	tr := col.Finish(1000)[0]
	var buf bytes.Buffer
	if err := source.WriteTrace(&buf, &tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("JPTRACE1garbage"))
	hostile := func(it Item) []byte {
		out := append([]byte(nil), "JPTRACE1"...)
		out = append(out, 0, 0, 0, 0)
		out = source.AppendItem(out, &it)
		return append(out, 0x03)
	}
	f.Add(hostile(Item{Packet: Packet{Kind: KBranch, NBits: 255, Bits: ^uint64(0)}}))
	f.Add(hostile(Item{Packet: Packet{Kind: Kind(0x7f), IP: 0xdead}}))
	f.Add(hostile(Item{Gap: true, LostBytes: 1 << 60, GapStart: 100, GapEnd: 1}))

	snap := buildWorld(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := source.ReadTrace(bytes.NewReader(data), Traits())
		if err != nil {
			return
		}
		for i := range got.Items {
			if err := Traits().ValidateItem(&got.Items[i]); err != nil {
				t.Fatalf("accepted trace holds invalid item %d: %v", i, err)
			}
		}
		d := New(snap)
		d.Decode(got.Items) // must not panic
		var out bytes.Buffer
		if err := source.WriteTrace(&out, got); err != nil {
			t.Fatalf("accepted trace does not re-serialize: %v", err)
		}
	})
}
