// Package netfault injects deterministic, seeded faults at the fleet's
// network edges: the coordinator control plane, the ingest handshake, and
// the data connections between pushers and nodes. It is the transport-layer
// sibling of internal/fault — where that package damages the *contents* of
// a trace, this one damages the *paths* the trace travels: connections
// refused (directional partitions), connections torn mid-stream, dials
// dropped outright, and latency added to the handshake.
//
// Determinism contract: for a fixed Matrix (seed included) every decision
// draws from a per-scope splitmix64 stream, one draw set per connection in
// that scope, so the nth connection of a scope always meets the same fate
// regardless of what other scopes did meanwhile. Scopes isolate the
// nondeterministic edges (heartbeat timing) from the deterministic ones
// (a client's sequential dials), which is what makes `jportal chaos
// -fleet` reproduce the same sweep table for the same seed.
//
// A zero (or rate-0) Matrix is pass-through: Listener and Dialer return
// their argument unchanged, so the no-netfault path is byte-identical by
// construction, not by testing alone.
package netfault

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"jportal/internal/metrics"
)

// Class identifies one injected network-fault kind.
type Class uint8

const (
	// ClassDrop refuses a single connection: the dial errors, or the
	// accepted connection is closed before the handshake.
	ClassDrop Class = iota
	// ClassTear lets the connection establish, then severs it after a
	// seeded byte budget — the mid-CHUNK disconnect case.
	ClassTear
	// ClassPartition refuses a contiguous run of connections in one
	// scope, modelling a directional network partition that heals after
	// PartitionSpan connection attempts.
	ClassPartition
	// ClassDelay holds the connection for a seeded duration before
	// letting it proceed — handshake latency, not loss.
	ClassDelay

	numClasses
)

// Slug returns the class's stable snake_case name (metrics counter suffix).
func (c Class) Slug() string {
	switch c {
	case ClassDrop:
		return "conn_drop"
	case ClassTear:
		return "conn_tear"
	case ClassPartition:
		return "partition"
	case ClassDelay:
		return "delay"
	}
	return "unknown"
}

// InjectCounterName is the metrics key mirroring injections of this class.
func (c Class) InjectCounterName() string { return "netfault_injected_" + c.Slug() }

// Matrix is one fault configuration: per-connection probabilities plus the
// seed every decision derives from.
type Matrix struct {
	Seed uint64

	// ConnDrop is the probability a connection is refused outright.
	ConnDrop float64
	// Tear is the probability a connection is severed after TearAfterMax
	// (seeded, per-connection) bytes of reads+writes.
	Tear float64
	// TearAfterMax bounds the torn connection's byte budget (default 4096).
	TearAfterMax int
	// Partition is the probability a directional partition opens on this
	// scope: the next PartitionSpan connections are refused.
	Partition float64
	// PartitionSpan is how many consecutive connections one partition
	// swallows (default 3).
	PartitionSpan int
	// DelayMax bounds the seeded per-connection delay (0 disables delays).
	DelayMax time.Duration
}

// DefaultMatrix is the chaos sweep's base rate: at Scale(1.0) roughly one
// connection in six is refused, one in ten is torn, and one scope in
// twenty partitions.
func DefaultMatrix(seed uint64) Matrix {
	return Matrix{
		Seed:          seed,
		ConnDrop:      0.15,
		Tear:          0.10,
		TearAfterMax:  4096,
		Partition:     0.05,
		PartitionSpan: 3,
		DelayMax:      2 * time.Millisecond,
	}
}

// Scale multiplies every probability by f (clamped to 1) and scales the
// delay bound. Scale(0) is the pass-through matrix.
func (m Matrix) Scale(f float64) Matrix {
	clamp := func(p float64) float64 {
		p *= f
		if p > 1 {
			return 1
		}
		if p < 0 {
			return 0
		}
		return p
	}
	m.ConnDrop = clamp(m.ConnDrop)
	m.Tear = clamp(m.Tear)
	m.Partition = clamp(m.Partition)
	m.DelayMax = time.Duration(float64(m.DelayMax) * f)
	return m
}

// active reports whether the matrix can inject anything at all.
func (m Matrix) active() bool {
	return m.ConnDrop > 0 || m.Tear > 0 || m.Partition > 0 || m.DelayMax > 0
}

// splitmix is the splitmix64 generator (same shape as internal/fault's).
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns true with probability p.
func (s *splitmix) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(s.next()>>11)/float64(1<<53) < p
}

// intn returns a value in [0, n).
func (s *splitmix) intn(n int) int { return int(s.next() % uint64(n)) }

// scopeState is one named stream's RNG plus any partition in progress.
type scopeState struct {
	rng           splitmix
	partitionLeft int
}

// verdict is one connection's fate. The draws behind it are made
// unconditionally and in a fixed order, so a scope's stream position after
// n connections is invariant across matrices with the same seed.
type verdict struct {
	refuse    bool
	class     Class // meaningful when refuse or tearAfter > 0 or delay > 0
	tearAfter int   // sever the connection after this many bytes (0 = never)
	delay     time.Duration
}

// Injector hands out per-connection verdicts and wraps listeners/dialers.
// Nil-safe: a nil *Injector injects nothing. Safe for concurrent use.
type Injector struct {
	m   Matrix
	reg *metrics.Registry

	mu     sync.Mutex
	scopes map[string]*scopeState
	counts [numClasses]int64
}

// NewInjector builds an injector over m, mirroring injection counts into
// reg (nil: counts are still kept internally). The total and per-class
// counters are pre-registered at zero so they are present — and zero — on
// rate-0 runs.
func NewInjector(m Matrix, reg *metrics.Registry) *Injector {
	in := &Injector{m: m, reg: reg, scopes: make(map[string]*scopeState)}
	reg.Add(metrics.CounterNetfaultInjected, 0)
	for c := Class(0); c < numClasses; c++ {
		reg.Add(c.InjectCounterName(), 0)
	}
	return in
}

// Counts returns per-class injection counts (indexed by Class).
func (in *Injector) Counts() map[string]int64 {
	out := make(map[string]int64, numClasses)
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for c := Class(0); c < numClasses; c++ {
		out[c.Slug()] = in.counts[c]
	}
	return out
}

func (in *Injector) scope(name string) *scopeState {
	sc, ok := in.scopes[name]
	if !ok {
		// Seed each scope from the matrix seed and an FNV-1a hash of its
		// name, run through one splitmix step so nearby hashes decorrelate.
		h := uint64(1469598103934665603)
		for i := 0; i < len(name); i++ {
			h ^= uint64(name[i])
			h *= 1099511628211
		}
		seed := splitmix{state: in.m.Seed ^ h}
		sc = &scopeState{rng: splitmix{state: seed.next()}}
		in.scopes[name] = sc
	}
	return sc
}

func (in *Injector) count(c Class) {
	in.counts[c]++
	in.reg.Add(metrics.CounterNetfaultInjected, 1)
	in.reg.Add(c.InjectCounterName(), 1)
}

// next draws one connection's verdict from the scope's stream.
func (in *Injector) next(scope string) verdict {
	if in == nil || !in.m.active() {
		return verdict{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	sc := in.scope(scope)
	if sc.partitionLeft > 0 {
		sc.partitionLeft--
		in.count(ClassPartition)
		return verdict{refuse: true, class: ClassPartition}
	}
	// Fixed draw order, every draw made: the stream advances identically
	// whether or not a given fault fires.
	part := sc.rng.chance(in.m.Partition)
	drop := sc.rng.chance(in.m.ConnDrop)
	tear := sc.rng.chance(in.m.Tear)
	tearMax := in.m.TearAfterMax
	if tearMax <= 0 {
		tearMax = 4096
	}
	tearAfter := sc.rng.intn(tearMax) + 1
	delayDraw := sc.rng.next()
	switch {
	case part:
		span := in.m.PartitionSpan
		if span <= 0 {
			span = 3
		}
		sc.partitionLeft = span - 1
		in.count(ClassPartition)
		return verdict{refuse: true, class: ClassPartition}
	case drop:
		in.count(ClassDrop)
		return verdict{refuse: true, class: ClassDrop}
	case tear:
		in.count(ClassTear)
		return verdict{tearAfter: tearAfter, class: ClassTear}
	case in.m.DelayMax > 0:
		in.count(ClassDelay)
		return verdict{delay: time.Duration(delayDraw % uint64(in.m.DelayMax)), class: ClassDelay}
	}
	return verdict{}
}

// errRefused is what a dropped or partitioned dial returns; it looks like
// any other network error to the client's retry loop.
var errRefused = errors.New("netfault: connection refused (injected)")

// errTorn is the error a torn connection's reads and writes return once
// its byte budget is spent.
var errTorn = errors.New("netfault: connection torn (injected)")

// DialFunc matches the client's Options.Dial shape.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Dialer wraps dial with fault injection under the named scope. Inactive
// injectors return dial itself, so the rate-0 path is the untouched one.
func (in *Injector) Dialer(scope string, dial DialFunc) DialFunc {
	if in == nil || !in.m.active() {
		return dial
	}
	return func(ctx context.Context, addr string) (net.Conn, error) {
		v := in.next(scope)
		if v.refuse {
			return nil, fmt.Errorf("%w: %s", errRefused, addr)
		}
		if v.delay > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(v.delay):
			}
		}
		conn, err := dial(ctx, addr)
		if err != nil || v.tearAfter == 0 {
			return conn, err
		}
		return &tornConn{Conn: conn, budget: v.tearAfter}, nil
	}
}

// DialContext adapts Dialer to net/http's Transport.DialContext shape, so
// the control-plane HTTP client can dial through the injector.
func (in *Injector) DialContext(scope string) func(ctx context.Context, network, addr string) (net.Conn, error) {
	dial := in.Dialer(scope, func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	})
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		return dial(ctx, addr)
	}
}

// Listener wraps ln with accept-side fault injection under the named
// scope: refused connections are closed before the handshake, torn ones
// sever after their byte budget. Inactive injectors return ln itself.
func (in *Injector) Listener(scope string, ln net.Listener) net.Listener {
	if in == nil || !in.m.active() {
		return ln
	}
	return &faultListener{Listener: ln, in: in, scope: scope}
}

type faultListener struct {
	net.Listener
	in    *Injector
	scope string
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		v := l.in.next(l.scope)
		if v.refuse {
			conn.Close()
			continue
		}
		if v.delay > 0 {
			time.Sleep(v.delay)
		}
		if v.tearAfter > 0 {
			return &tornConn{Conn: conn, budget: v.tearAfter}, nil
		}
		return conn, nil
	}
}

// tornConn passes bytes through until its budget is spent, then closes the
// underlying connection and fails every subsequent operation — the shape
// of a connection reset mid-stream. A write that would cross the budget is
// written partially (a torn write), like a real half-flushed socket.
type tornConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
	torn   bool
}

func (c *tornConn) take(n int) (allowed int, torn bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.torn {
		return 0, true
	}
	if n >= c.budget {
		n = c.budget
		c.torn = true
	}
	c.budget -= n
	return n, c.torn
}

func (c *tornConn) Read(b []byte) (int, error) {
	allowed, torn := c.take(len(b))
	if allowed == 0 && torn {
		c.Conn.Close()
		return 0, errTorn
	}
	n, err := c.Conn.Read(b[:allowed])
	if torn {
		c.Conn.Close()
		if err == nil {
			err = errTorn
		}
	}
	return n, err
}

func (c *tornConn) Write(b []byte) (int, error) {
	allowed, torn := c.take(len(b))
	if allowed == 0 && torn {
		c.Conn.Close()
		return 0, errTorn
	}
	n, err := c.Conn.Write(b[:allowed])
	if torn {
		c.Conn.Close()
		if err == nil {
			err = errTorn
		}
	}
	return n, err
}
