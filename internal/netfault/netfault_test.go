package netfault

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"jportal/internal/metrics"
)

// drawFates records the verdict sequence one scope produces.
func drawFates(in *Injector, scope string, n int) []verdict {
	out := make([]verdict, n)
	for i := range out {
		out[i] = in.next(scope)
	}
	return out
}

func TestDeterministicPerScope(t *testing.T) {
	m := DefaultMatrix(42).Scale(2)
	a := NewInjector(m, nil)
	b := NewInjector(m, nil)
	// Interleave scope draws differently across the two injectors: the
	// per-scope streams must not care.
	for i := 0; i < 50; i++ {
		a.next("ctrl")
	}
	fa := drawFates(a, "client", 200)
	fb1 := drawFates(b, "client", 100)
	for i := 0; i < 50; i++ {
		b.next("ctrl")
	}
	fb2 := drawFates(b, "client", 100)
	fb := append(fb1, fb2...)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("verdict %d diverged across interleavings: %+v vs %+v", i, fa[i], fb[i])
		}
	}
	if drawFates(a, "other", 1)[0] == drawFates(a, "client", 1)[0] {
		// Not a hard property (collisions are possible), but with these
		// rates the first verdicts of distinct scopes colliding on every
		// field would indicate the scope hash is not feeding the stream.
		t.Log("note: first verdicts of two scopes coincided")
	}
}

func TestPartitionSwallowsSpan(t *testing.T) {
	m := Matrix{Seed: 7, Partition: 1, PartitionSpan: 3}
	in := NewInjector(m, nil)
	refused := 0
	for i := 0; i < 6; i++ {
		if in.next("s").refuse {
			refused++
		}
	}
	if refused != 6 {
		t.Fatalf("Partition=1 refused %d/6 connections, want all", refused)
	}
	if got := in.Counts()["partition"]; got != 6 {
		t.Fatalf("partition count = %d, want 6", got)
	}
}

func TestZeroMatrixIsPassthrough(t *testing.T) {
	in := NewInjector(Matrix{Seed: 1}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := in.Listener("s", ln); got != ln {
		t.Fatalf("zero matrix must return the listener unchanged, got %T", got)
	}
	dial := func(ctx context.Context, addr string) (net.Conn, error) { return nil, nil }
	if in.Dialer("s", dial) == nil {
		t.Fatal("Dialer returned nil")
	}
	var nilInj *Injector
	if got := nilInj.Listener("s", ln); got != ln {
		t.Fatal("nil injector must return the listener unchanged")
	}
	if v := nilInj.next("s"); v != (verdict{}) {
		t.Fatalf("nil injector verdict = %+v, want zero", v)
	}
	// Scale(0) deactivates everything.
	if DefaultMatrix(9).Scale(0).active() {
		t.Fatal("Scale(0) matrix still active")
	}
}

func TestTornConnSeversAfterBudget(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	torn := &tornConn{Conn: client, budget: 5}
	go func() {
		io.ReadFull(server, make([]byte, 5))
	}()
	if _, err := torn.Write([]byte("hello world")); !errors.Is(err, errTorn) {
		t.Fatalf("write past budget = %v, want errTorn", err)
	}
	if _, err := torn.Write([]byte("x")); !errors.Is(err, errTorn) {
		t.Fatalf("write after tear = %v, want errTorn", err)
	}
	if _, err := torn.Read(make([]byte, 1)); !errors.Is(err, errTorn) {
		t.Fatalf("read after tear = %v, want errTorn", err)
	}
}

func TestDialerInjectsAndCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	in := NewInjector(Matrix{Seed: 3, ConnDrop: 1}, reg)
	dial := in.Dialer("s", func(ctx context.Context, addr string) (net.Conn, error) {
		t.Fatal("inner dial must not run for a dropped connection")
		return nil, nil
	})
	if _, err := dial(context.Background(), "x"); !errors.Is(err, errRefused) {
		t.Fatalf("dial = %v, want errRefused", err)
	}
	if got := reg.Get(metrics.CounterNetfaultInjected); got != 1 {
		t.Fatalf("netfault_injected_total = %d, want 1", got)
	}
	if got := reg.Get(ClassDrop.InjectCounterName()); got != 1 {
		t.Fatalf("per-class drop counter = %d, want 1", got)
	}
}

func TestListenerRefusesAndServesNext(t *testing.T) {
	// Drop exactly the first accepted connection (seeded draw with
	// ConnDrop=1 for one verdict, then a fresh injector would... instead
	// use partition span 1 via draw order): simplest deterministic shape
	// is ConnDrop=1 — every connection is refused — and assert the dial
	// side sees EOF-like behavior while Accept keeps serving.
	in := NewInjector(Matrix{Seed: 5, ConnDrop: 1}, nil)
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listener("s", base)
	defer ln.Close()
	accepted := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
		close(accepted)
	}()
	// Every accepted connection is refused, so Accept never returns until
	// the listener closes; the client just sees its connection die.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused connection delivered bytes")
	}
	conn.Close()
	ln.Close()
	<-accepted
}
