package baselines

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/vm"
)

const baseSrc = `
method T.fun(2) returns int {
    iload 0
    ifeq Lelse
    iload 1
    iconst 1
    iadd
    istore 1
    goto Ljoin
Lelse:
    iload 1
    iconst 2
    isub
    istore 1
Ljoin:
    iload 1
    iconst 2
    irem
    ifne Lfalse
    iconst 1
    ireturn
Lfalse:
    iconst 0
    ireturn
}

method T.driver(0) returns int {
    iconst 0
    istore 0
    iconst 0
    istore 1
Lloop:
    iload 0
    iconst 50
    if_icmpge Ldone
    iload 0
    iconst 2
    irem
    iload 0
    iconst 2
    idiv
    invokestatic T.fun
    iload 1
    iadd
    istore 1
    iinc 0 1
    goto Lloop
Ldone:
    iload 1
    ireturn
}

method T.main(0) {
    invokestatic T.driver
    istore 2
    return
}
entry T.main
`

// runBoth executes the original and an instrumented program and returns the
// two results (semantic equivalence harness).
func runResult(t *testing.T, p *bytecode.Program, reg *Registry) int32 {
	t.Helper()
	cfg := vm.DefaultConfig()
	m := vm.New(p, cfg)
	if reg != nil {
		m.Probe = reg.Handle
		m.ProbeActionCost = 10
	}
	// Make the entry return the driver value for comparison: main stores
	// into local 2; use ThreadResults via a wrapper that ireturns... The
	// entry is void, so compare via oracle instruction counts instead:
	// here we just ensure execution completes and return driver's value
	// by re-running driver directly.
	stats, err := m.Run([]vm.ThreadSpec{{Method: p.MethodByName("T.driver").ID}})
	if err != nil {
		t.Fatal(err)
	}
	_ = stats
	return stats.ThreadResults[0]
}

func TestInstrumentationPreservesSemantics(t *testing.T) {
	orig := bytecode.MustAssemble(baseSrc)
	want := runResult(t, orig, nil)

	t.Run("coverage", func(t *testing.T) {
		ip, prof, err := InstrumentCoverage(bytecode.MustAssemble(baseSrc))
		if err != nil {
			t.Fatal(err)
		}
		if got := runResult(t, ip, &prof.Registry); got != want {
			t.Errorf("SC-instrumented result %d, want %d", got, want)
		}
	})
	t.Run("paths", func(t *testing.T) {
		ip, prof, err := InstrumentPaths(bytecode.MustAssemble(baseSrc))
		if err != nil {
			t.Fatal(err)
		}
		if got := runResult(t, ip, &prof.Registry); got != want {
			t.Errorf("PF-instrumented result %d, want %d", got, want)
		}
	})
	t.Run("flow", func(t *testing.T) {
		ip, prof, err := InstrumentFlow(bytecode.MustAssemble(baseSrc))
		if err != nil {
			t.Fatal(err)
		}
		if got := runResult(t, ip, &prof.Registry); got != want {
			t.Errorf("CF-instrumented result %d, want %d", got, want)
		}
	})
	t.Run("hot", func(t *testing.T) {
		ip, prof, err := InstrumentHot(bytecode.MustAssemble(baseSrc))
		if err != nil {
			t.Fatal(err)
		}
		if got := runResult(t, ip, &prof.Registry); got != want {
			t.Errorf("HM-instrumented result %d, want %d", got, want)
		}
	})
}

func TestCoverageProfilerFindsAllHotBlocks(t *testing.T) {
	p := bytecode.MustAssemble(baseSrc)
	ip, prof, err := InstrumentCoverage(p)
	if err != nil {
		t.Fatal(err)
	}
	runResult(t, ip, &prof.Registry)
	cov, tot := prof.CoveredBlocks()
	if tot == 0 || cov == 0 {
		t.Fatalf("coverage empty: %d/%d", cov, tot)
	}
	// Both branch sides of fun execute over 50 iterations; everything in
	// fun and driver is covered; only main (not run here) is untouched.
	fun := p.MethodByName("T.fun")
	for blk, hit := range prof.Covered[fun.ID] {
		if !hit {
			t.Errorf("fun block %d never covered", blk)
		}
	}
}

func TestPathProfilerCountsMatchExecution(t *testing.T) {
	p := bytecode.MustAssemble(baseSrc)
	ip, prof, err := InstrumentPaths(p)
	if err != nil {
		t.Fatal(err)
	}
	runResult(t, ip, &prof.Registry)
	fun := p.MethodByName("T.fun")
	counts := prof.Counts[fun.ID]
	if counts == nil {
		t.Fatal("no path counts for fun")
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	// fun runs 50 times; each invocation completes exactly one acyclic
	// path (no loops inside fun).
	if total != 50 {
		t.Errorf("fun path executions = %d, want 50", total)
	}
	// The even/odd argument split exercises both first branches: at least
	// 2 distinct paths.
	if len(counts) < 2 {
		t.Errorf("distinct paths = %d, want >= 2", len(counts))
	}
}

func TestFlowProfilerTraceAndReplay(t *testing.T) {
	p := bytecode.MustAssemble(baseSrc)
	ip, prof, err := InstrumentFlow(p)
	if err != nil {
		t.Fatal(err)
	}
	runResult(t, ip, &prof.Registry)
	if prof.TraceBytes() == 0 {
		t.Fatal("no flow events")
	}
	steps := prof.Replay(0)
	if len(steps) == 0 {
		t.Fatal("replay empty")
	}
	// Replay expands blocks to instructions: strictly more steps than
	// events.
	if len(steps) < len(prof.Events) {
		t.Errorf("replay %d < events %d", len(steps), len(prof.Events))
	}
}

func TestHotProfilerCounts(t *testing.T) {
	p := bytecode.MustAssemble(baseSrc)
	ip, prof, err := InstrumentHot(p)
	if err != nil {
		t.Fatal(err)
	}
	runResult(t, ip, &prof.Registry)
	fun := p.MethodByName("T.fun")
	if prof.Calls[fun.ID] != 50 {
		t.Errorf("fun calls = %d, want 50", prof.Calls[fun.ID])
	}
	top := prof.Top(10)
	if len(top) == 0 || top[0] != int32(fun.ID) {
		t.Errorf("top = %v, want fun first", top)
	}
}

func TestSamplersProduceRankings(t *testing.T) {
	p := bytecode.MustAssemble(baseSrc)
	xp := NewXprof(500)
	m := vm.New(p, vm.DefaultConfig())
	m.Sampler = xp
	if _, err := m.Run([]vm.ThreadSpec{{Method: p.MethodByName("T.driver").ID}}); err != nil {
		t.Fatal(err)
	}
	if len(xp.Samples) == 0 {
		t.Fatal("xprof took no samples")
	}
	if len(xp.Top(10)) == 0 {
		t.Fatal("xprof top empty")
	}

	jp := NewJProfiler(500)
	m2 := vm.New(bytecode.MustAssemble(baseSrc), vm.DefaultConfig())
	m2.Sampler = jp
	if _, err := m2.Run([]vm.ThreadSpec{{Method: p.MethodByName("T.driver").ID}}); err != nil {
		t.Fatal(err)
	}
	if len(jp.Samples) == 0 {
		t.Fatal("jprofiler took no samples")
	}
}

func TestRewritePreservesHandlers(t *testing.T) {
	src := `
method T.m(1) returns int {
Ltry:
    iconst 10
    iload 0
    idiv
    ireturn
Lcatch:
    iconst 1
    iadd
    ireturn
    handler Ltry Lcatch Lcatch any
}
method T.main(0) {
    iconst 0
    invokestatic T.m
    pop
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	ip, prof, err := InstrumentCoverage(p)
	if err != nil {
		t.Fatal(err)
	}
	// Run T.m(0): divides by zero, caught, returns code+1 = 2.
	m := vm.New(ip, vm.DefaultConfig())
	m.Probe = prof.Registry.Handle
	stats, err := m.Run([]vm.ThreadSpec{{Method: ip.MethodByName("T.m").ID, Args: []int32{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ThreadResults[0] != 2 {
		t.Errorf("instrumented exception path returned %d, want 2", stats.ThreadResults[0])
	}
	if stats.UncaughtThrows != 0 {
		t.Error("handler lost in rewriting")
	}
}
