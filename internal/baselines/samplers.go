package baselines

import (
	"jportal/internal/bytecode"
)

// Sampling profilers (paper §7: xprof [16] and JProfiler [8]). Both take
// one sample per interval (the paper uses the 10ms xprof default); they
// differ in *where* samples land and in agent overhead:
//
//   - XprofSampler samples on a timer tick regardless of position (flat
//     profiler); its agent overhead is small.
//   - JProfilerSampler can only observe threads at safepoints (method
//     entries and taken backedges), biasing samples toward call- and
//     loop-heavy code, and its heavier agent charges more per safepoint
//     poll — reproducing JProfiler's higher Table 2 overheads.
type XprofSampler struct {
	Interval uint64
	// SampleCost is charged per sample (signal + stack walk).
	SampleCost uint64
	// TickCost is the agent's continuous per-bytecode overhead.
	TickCost uint64

	Samples []bytecode.MethodID
	next    map[int]uint64 // per-core next sample time
	ticks   uint64
}

// NewXprof returns the xprof-equivalent sampler; interval is in cycles.
func NewXprof(interval uint64) *XprofSampler {
	return &XprofSampler{Interval: interval, SampleCost: 2200, TickCost: 1, next: map[int]uint64{}}
}

// OnStep implements vm.Sampler.
func (s *XprofSampler) OnStep(tid, core int, tsc uint64, mid bytecode.MethodID, safepoint bool) uint64 {
	// xprof's agent overhead is light: charge the tick cost on every
	// fourth bytecode.
	s.ticks++
	var cost uint64
	if s.ticks&3 == 0 {
		cost = s.TickCost
	}
	nx, ok := s.next[core]
	if !ok {
		nx = tsc + s.Interval
	}
	if tsc >= nx {
		s.Samples = append(s.Samples, mid)
		nx = tsc + s.Interval
		cost += s.SampleCost
	}
	s.next[core] = nx
	return cost
}

// Top returns the methods ranked by sample count.
func (s *XprofSampler) Top(n int) []int32 {
	return topFromSamples(s.Samples, n)
}

// JProfilerSampler is the safepoint-biased sampler.
type JProfilerSampler struct {
	Interval uint64
	// SampleCost is charged per sample (JVMTI stack dump).
	SampleCost uint64
	// SafepointCost is charged at every safepoint poll while the agent is
	// attached.
	SafepointCost uint64
	// TickCost is the continuous bookkeeping overhead.
	TickCost uint64

	Samples []bytecode.MethodID
	next    map[int]uint64
}

// NewJProfiler returns the JProfiler-equivalent sampler.
func NewJProfiler(interval uint64) *JProfilerSampler {
	return &JProfilerSampler{
		Interval: interval, SampleCost: 9000, SafepointCost: 5, TickCost: 1,
		next: map[int]uint64{},
	}
}

// OnStep implements vm.Sampler.
func (s *JProfilerSampler) OnStep(tid, core int, tsc uint64, mid bytecode.MethodID, safepoint bool) uint64 {
	cost := s.TickCost
	if safepoint {
		cost += s.SafepointCost
		nx, ok := s.next[core]
		if !ok {
			nx = tsc + s.Interval
		}
		if tsc >= nx {
			s.Samples = append(s.Samples, mid)
			nx = tsc + s.Interval
			cost += s.SampleCost
		}
		s.next[core] = nx
	}
	return cost
}

// Top returns the methods ranked by sample count.
func (s *JProfilerSampler) Top(n int) []int32 {
	return topFromSamples(s.Samples, n)
}

func topFromSamples(samples []bytecode.MethodID, n int) []int32 {
	if len(samples) == 0 {
		return nil
	}
	max := bytecode.MethodID(0)
	for _, m := range samples {
		if m > max {
			max = m
		}
	}
	counts := make([]int64, max+1)
	for _, m := range samples {
		counts[m]++
	}
	return rankTop(counts, n)
}
