package baselines

import (
	"sort"
	"sync"

	"jportal/internal/ballarus"
	"jportal/internal/bytecode"
	"jportal/internal/cfg"
)

// Registry maps probe IDs to actions; it implements the VM's ProbeHandler.
type Registry struct {
	mu      sync.Mutex
	actions []func(tid int)
}

// Add registers an action and returns its probe ID.
func (r *Registry) Add(f func(tid int)) int32 {
	r.actions = append(r.actions, f)
	return int32(len(r.actions) - 1)
}

// Handle dispatches a probe firing (vm.ProbeHandler signature).
func (r *Registry) Handle(tid int, probe int32) {
	r.actions[probe](tid)
}

// --- Statement coverage profiling (paper baseline SC, [24]) ---

// CoverageProfiler records which basic blocks executed.
type CoverageProfiler struct {
	Registry Registry
	// Covered[mid][block] reports execution.
	Covered map[bytecode.MethodID][]bool
	// Events counts probe firings (for overhead accounting).
	Events uint64
}

// ProbeCost is the per-firing cycle cost the paper-equivalent ASM
// instrumentation would incur for each technique (static call into the
// profiling class, counter publication).
const (
	CoverageProbeCost = 120
	PathProbeCost     = 160
	FlowProbeCost     = 5000
	HotProbeCost      = 300
)

// InstrumentCoverage builds the SC-instrumented program.
func InstrumentCoverage(prog *bytecode.Program) (*bytecode.Program, *CoverageProfiler, error) {
	p := &CoverageProfiler{Covered: make(map[bytecode.MethodID][]bool)}
	instrumented, err := InstrumentProgram(prog, func(m *bytecode.Method) (*bytecode.Method, error) {
		g := cfg.Build(m)
		covered := make([]bool, len(g.Blocks))
		p.Covered[m.ID] = covered
		plan := newPlan()
		for _, b := range g.Blocks {
			blk := b
			id := p.Registry.Add(func(int) {
				p.Events++
				covered[blk.ID] = true
			})
			plan.atAll(blk.Start, id)
		}
		return rewrite(m, plan)
	})
	if err != nil {
		return nil, nil, err
	}
	return instrumented, p, nil
}

// CoveredBlocks returns (covered, total) over all methods.
func (p *CoverageProfiler) CoveredBlocks() (int, int) {
	cov, tot := 0, 0
	for _, blocks := range p.Covered {
		for _, c := range blocks {
			tot++
			if c {
				cov++
			}
		}
	}
	return cov, tot
}

// --- Path frequency profiling (paper baseline PF, [25]) ---

// PathProfiler holds Ball-Larus path counters.
type PathProfiler struct {
	Registry Registry
	// Counts[mid][pathID] is the path frequency; methods that fell back
	// to edge profiling appear in EdgeCounts instead.
	Counts     map[bytecode.MethodID]map[int64]uint64
	EdgeCounts map[bytecode.MethodID]map[ballarus.EdgeKey]uint64
	Numberings map[bytecode.MethodID]*ballarus.Numbering
	Events     uint64

	// regs is the per-thread stack of (method, path register).
	regs map[int][]pathReg
}

type pathReg struct {
	mid bytecode.MethodID
	r   int64
}

// InstrumentPaths builds the PF-instrumented program.
func InstrumentPaths(prog *bytecode.Program) (*bytecode.Program, *PathProfiler, error) {
	p := &PathProfiler{
		Counts:     make(map[bytecode.MethodID]map[int64]uint64),
		EdgeCounts: make(map[bytecode.MethodID]map[ballarus.EdgeKey]uint64),
		Numberings: make(map[bytecode.MethodID]*ballarus.Numbering),
		regs:       make(map[int][]pathReg),
	}
	instrumented, err := InstrumentProgram(prog, func(m *bytecode.Method) (*bytecode.Method, error) {
		num, err := ballarus.Number(m)
		if err != nil {
			// Path explosion: fall back to edge profiling for this
			// method, as production BL implementations do.
			return instrumentEdges(p, m)
		}
		p.Numberings[m.ID] = num
		counts := make(map[int64]uint64)
		p.Counts[m.ID] = counts
		mid := m.ID
		plan := newPlan()

		// Entry probe: push a fresh path register. A fall-only slot at
		// pc 0 executes exactly once per invocation (loop branches back
		// to pc 0 land after it).
		entryID := p.Registry.Add(func(tid int) {
			p.Events++
			p.regs[tid] = append(p.regs[tid], pathReg{mid: mid})
		})
		plan.atFall(0, entryID)

		// Edge increments.
		for _, inc := range num.Increments {
			inc := inc
			var id int32
			if inc.Backedge {
				id = p.Registry.Add(func(tid int) {
					p.Events++
					if top := p.top(tid, mid); top != nil {
						counts[top.r+inc.Add]++
						top.r = inc.Reset
					}
				})
			} else {
				id = p.Registry.Add(func(tid int) {
					p.Events++
					if top := p.top(tid, mid); top != nil {
						top.r += inc.Add
					}
				})
			}
			addEdgeProbe(plan, num.G, inc.Edge, id)
		}

		// Exit probes: count the completed path and pop.
		exitID := p.Registry.Add(func(tid int) {
			p.Events++
			if top := p.top(tid, mid); top != nil {
				counts[top.r]++
				p.pop(tid, mid)
			}
		})
		for pc := int32(0); pc < int32(len(m.Code)); pc++ {
			if m.Code[pc].Op.IsReturn() {
				plan.atAll(pc, exitID)
			}
		}
		return rewrite(m, plan)
	})
	if err != nil {
		return nil, nil, err
	}
	return instrumented, p, nil
}

// top returns the active register for mid, unwinding entries leaked by
// exceptional returns.
func (p *PathProfiler) top(tid int, mid bytecode.MethodID) *pathReg {
	s := p.regs[tid]
	for len(s) > 0 && s[len(s)-1].mid != mid {
		s = s[:len(s)-1]
	}
	p.regs[tid] = s
	if len(s) == 0 {
		return nil
	}
	return &s[len(s)-1]
}

func (p *PathProfiler) pop(tid int, mid bytecode.MethodID) {
	s := p.regs[tid]
	if len(s) > 0 && s[len(s)-1].mid == mid {
		p.regs[tid] = s[:len(s)-1]
	}
}

func instrumentEdges(p *PathProfiler, m *bytecode.Method) (*bytecode.Method, error) {
	g := cfg.Build(m)
	counts := make(map[ballarus.EdgeKey]uint64)
	p.EdgeCounts[m.ID] = counts
	plan := newPlan()
	for _, e := range g.Edges {
		if e.Kind == cfg.EdgeThrow {
			continue
		}
		key := ballarus.EdgeKey{From: e.From, To: e.To, Kind: e.Kind, Arg: e.Arg}
		id := p.Registry.Add(func(int) {
			p.Events++
			counts[key]++
		})
		addEdgeProbe(plan, g, key, id)
	}
	return rewrite(m, plan)
}

// addEdgeProbe places a probe on the given block edge: fallthrough edges
// use a fall-only slot at the target; branch edges use a trampoline.
func addEdgeProbe(plan *probePlan, g *cfg.CFG, e ballarus.EdgeKey, id int32) {
	src := g.Blocks[e.From]
	switch e.Kind {
	case cfg.EdgeFallthrough:
		plan.atFall(g.Blocks[e.To].Start, id)
	case cfg.EdgeJump, cfg.EdgeTaken:
		plan.onEdge(src.Last(), -1, id)
	case cfg.EdgeSwitch:
		ins := &g.Method.Code[src.Last()]
		if e.Arg == cfg.SwitchDefault {
			plan.onEdge(src.Last(), -2, id)
		} else {
			plan.onEdge(src.Last(), e.Arg-ins.A, id)
		}
	}
}

// TotalPaths returns the number of distinct paths observed.
func (p *PathProfiler) TotalPaths() int {
	n := 0
	for _, c := range p.Counts {
		n += len(c)
	}
	return n
}

// --- Control-flow tracing (paper baseline CF, [24]) ---

// FlowEvent is one logged control-flow record.
type FlowEvent struct {
	Thread int
	Method bytecode.MethodID
	Block  int32
}

// FlowProfiler logs every executed basic block, the instrumentation-based
// equivalent of JPortal's end-to-end control-flow trace. Its event log is
// the "TS" the paper reports for the baseline in Table 5.
type FlowProfiler struct {
	Registry Registry
	Events   []FlowEvent
	// BlockCode maps (mid, block) to the instruction range, for replay.
	blocks map[bytecode.MethodID][]cfg.Block
}

// InstrumentFlow builds the CF-instrumented program.
func InstrumentFlow(prog *bytecode.Program) (*bytecode.Program, *FlowProfiler, error) {
	p := &FlowProfiler{blocks: make(map[bytecode.MethodID][]cfg.Block)}
	instrumented, err := InstrumentProgram(prog, func(m *bytecode.Method) (*bytecode.Method, error) {
		g := cfg.Build(m)
		bs := make([]cfg.Block, len(g.Blocks))
		for i, b := range g.Blocks {
			bs[i] = *b
		}
		p.blocks[m.ID] = bs
		plan := newPlan()
		mid := m.ID
		for _, b := range g.Blocks {
			blk := int32(b.ID)
			id := p.Registry.Add(func(tid int) {
				p.Events = append(p.Events, FlowEvent{Thread: tid, Method: mid, Block: blk})
			})
			plan.atAll(b.Start, id)
		}
		return rewrite(m, plan)
	})
	if err != nil {
		return nil, nil, err
	}
	return instrumented, p, nil
}

// TraceBytes is the event log's size: the paper's ASM-based tracer writes a
// compact record per block event.
func (p *FlowProfiler) TraceBytes() uint64 { return uint64(len(p.Events)) * 8 }

// Replay expands the block events of one thread into the executed
// instruction stream (the baseline's "decoding" whose time Table 5
// reports).
func (p *FlowProfiler) Replay(thread int) []int64 {
	var out []int64
	for _, ev := range p.Events {
		if ev.Thread != thread {
			continue
		}
		b := p.blocks[ev.Method][ev.Block]
		for pc := b.Start; pc < b.End; pc++ {
			out = append(out, int64(ev.Method)<<32|int64(pc))
		}
	}
	return out
}

// --- Hot-method instrumentation profiling (paper baseline HM) ---

// HotProfiler counts method entries/exits with timestamped events.
type HotProfiler struct {
	Registry Registry
	Calls    []int64
	Events   uint64
}

// InstrumentHot builds the HM-instrumented program.
func InstrumentHot(prog *bytecode.Program) (*bytecode.Program, *HotProfiler, error) {
	p := &HotProfiler{Calls: make([]int64, len(prog.Methods))}
	instrumented, err := InstrumentProgram(prog, func(m *bytecode.Method) (*bytecode.Method, error) {
		plan := newPlan()
		mid := m.ID
		enter := p.Registry.Add(func(int) {
			p.Events++
			p.Calls[mid]++
		})
		exit := p.Registry.Add(func(int) { p.Events++ })
		plan.atFall(0, enter)
		for pc := int32(0); pc < int32(len(m.Code)); pc++ {
			if m.Code[pc].Op.IsReturn() {
				plan.atAll(pc, exit)
			}
		}
		return rewrite(m, plan)
	})
	if err != nil {
		return nil, nil, err
	}
	return instrumented, p, nil
}

// Top returns the methods ranked by entry count.
func (p *HotProfiler) Top(n int) []int32 {
	return rankTop(p.Calls, n)
}

func rankTop(counts []int64, n int) []int32 {
	idx := make([]int32, len(counts))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
	out := make([]int32, 0, n)
	for _, i := range idx {
		if counts[i] == 0 || len(out) == n {
			break
		}
		out = append(out, i)
	}
	return out
}
