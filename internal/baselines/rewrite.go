// Package baselines implements the profiling techniques JPortal is
// evaluated against (paper §7): Ball-Larus instrumentation-based statement
// coverage, efficient path profiling and full control-flow tracing
// ([24]/[25], reimplemented as real bytecode rewriting, the way the paper
// reimplements them with ASM), a hot-method instrumentation profiler, and
// two sampling profilers standing in for xprof and JProfiler.
package baselines

import (
	"fmt"

	"jportal/internal/bytecode"
)

// probePlan describes where probes go in one method.
type probePlan struct {
	// beforeAll[pc] probes run whenever control reaches pc (branch
	// targets land on them).
	beforeAll map[int32][]int32
	// fallOnly[pc] probes run only when control falls through from pc-1
	// (they instrument the fallthrough edge; branch targets skip them).
	fallOnly map[int32][]int32
	// trampolines instrument branch edges: the branch is re-targeted to a
	// probe sequence that jumps on to the original target.
	trampolines []trampoline
}

type trampoline struct {
	fromPC int32
	// caseIdx selects which outgoing edge: -1 the primary target (A of a
	// conditional or goto), -2 a tableswitch default, >= 0 a tableswitch
	// case slot.
	caseIdx int32
	probes  []int32
}

func newPlan() *probePlan {
	return &probePlan{
		beforeAll: make(map[int32][]int32),
		fallOnly:  make(map[int32][]int32),
	}
}

func (p *probePlan) atAll(pc int32, probe int32) {
	p.beforeAll[pc] = append(p.beforeAll[pc], probe)
}

func (p *probePlan) atFall(pc int32, probe int32) {
	p.fallOnly[pc] = append(p.fallOnly[pc], probe)
}

func (p *probePlan) onEdge(fromPC, caseIdx int32, probe int32) {
	for i := range p.trampolines {
		t := &p.trampolines[i]
		if t.fromPC == fromPC && t.caseIdx == caseIdx {
			t.probes = append(t.probes, probe)
			return
		}
	}
	p.trampolines = append(p.trampolines, trampoline{
		fromPC: fromPC, caseIdx: caseIdx, probes: []int32{probe},
	})
}

// rewrite produces an instrumented copy of m according to plan. Branch
// targets, switch tables and handler ranges are remapped; trampolines are
// appended after the original code.
func rewrite(m *bytecode.Method, plan *probePlan) (*bytecode.Method, error) {
	n := int32(len(m.Code))
	// Layout: for each old pc, [fallOnly probes][beforeAll probes][instr].
	landing := make([]int32, n+1) // branch targets land after fallOnly
	fallStart := make([]int32, n+1)
	var pos int32
	for pc := int32(0); pc <= n; pc++ {
		fallStart[pc] = pos
		pos += int32(len(plan.fallOnly[pc]))
		landing[pc] = pos
		if pc < n {
			pos += int32(len(plan.beforeAll[pc]))
			pos++ // the instruction itself
		}
	}
	bodyLen := pos

	// Trampoline layout, after the body.
	trampAt := make(map[[2]int32]int32, len(plan.trampolines))
	for _, t := range plan.trampolines {
		trampAt[[2]int32{t.fromPC, t.caseIdx}] = pos
		pos += int32(len(t.probes)) + 1 // probes + goto
	}

	out := &bytecode.Method{
		ID:           bytecode.NoMethod,
		Class:        m.Class,
		Name:         m.Name,
		NArgs:        m.NArgs,
		MaxLocals:    m.MaxLocals,
		ReturnsValue: m.ReturnsValue,
		Code:         make([]bytecode.Instruction, 0, pos),
	}

	retarget := func(fromPC, caseIdx, oldTarget int32) int32 {
		if t, ok := trampAt[[2]int32{fromPC, caseIdx}]; ok {
			return t
		}
		return landing[oldTarget]
	}

	for pc := int32(0); pc < n; pc++ {
		for _, id := range plan.fallOnly[pc] {
			out.Code = append(out.Code, bytecode.Instruction{Op: bytecode.PROBE, A: id})
		}
		for _, id := range plan.beforeAll[pc] {
			out.Code = append(out.Code, bytecode.Instruction{Op: bytecode.PROBE, A: id})
		}
		ins := m.Code[pc]
		switch {
		case ins.Op == bytecode.GOTO || ins.Op.IsCondBranch():
			ins.A = retarget(pc, -1, ins.A)
		case ins.Op == bytecode.TABLESWITCH:
			newTargets := make([]int32, len(ins.Targets))
			for i, t := range ins.Targets {
				newTargets[i] = retarget(pc, int32(i), t)
			}
			ins.Targets = newTargets
			ins.B = retarget(pc, -2, ins.B)
		}
		out.Code = append(out.Code, ins)
	}
	if int32(len(out.Code)) != bodyLen {
		return nil, fmt.Errorf("rewrite %s: body layout mismatch", m.FullName())
	}
	for _, t := range plan.trampolines {
		for _, id := range t.probes {
			out.Code = append(out.Code, bytecode.Instruction{Op: bytecode.PROBE, A: id})
		}
		target, err := edgeTarget(m, t.fromPC, t.caseIdx)
		if err != nil {
			return nil, err
		}
		out.Code = append(out.Code, bytecode.Instruction{Op: bytecode.GOTO, A: landing[target]})
	}

	for _, h := range m.Handlers {
		out.Handlers = append(out.Handlers, bytecode.Handler{
			From:   fallStart[h.From],
			To:     fallStart[h.To],
			Target: landing[h.Target],
			Code:   h.Code,
		})
	}
	return out, nil
}

func edgeTarget(m *bytecode.Method, fromPC, caseIdx int32) (int32, error) {
	ins := &m.Code[fromPC]
	switch {
	case caseIdx == -1:
		return ins.A, nil
	case caseIdx == -2:
		if ins.Op != bytecode.TABLESWITCH {
			return 0, fmt.Errorf("rewrite %s: default edge on non-switch @%d", m.FullName(), fromPC)
		}
		return ins.B, nil
	default:
		if ins.Op != bytecode.TABLESWITCH || int(caseIdx) >= len(ins.Targets) {
			return 0, fmt.Errorf("rewrite %s: bad case edge @%d/%d", m.FullName(), fromPC, caseIdx)
		}
		return ins.Targets[caseIdx], nil
	}
}

// InstrumentProgram applies instrument to every method of prog and returns
// the instrumented program (dispatch tables and entry carried over; method
// IDs preserved).
func InstrumentProgram(prog *bytecode.Program, instrument func(*bytecode.Method) (*bytecode.Method, error)) (*bytecode.Program, error) {
	out := &bytecode.Program{
		DispatchTables: prog.DispatchTables,
		Entry:          prog.Entry,
	}
	for _, m := range prog.Methods {
		im, err := instrument(m)
		if err != nil {
			return nil, err
		}
		im.ID = m.ID
		out.Methods = append(out.Methods, im)
	}
	if err := bytecode.Verify(out); err != nil {
		return nil, fmt.Errorf("instrumented program fails verification: %w", err)
	}
	return out, nil
}
