package workload

import (
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/vm"
)

func sc(base int, scale Scale) int {
	n := int(float64(base) * float64(scale))
	if n < 1 {
		n = 1
	}
	return n
}

// genAvrora models an instruction-set simulator: a fetch/decode/execute
// loop over a synthetic "program" array, dispatching through a tableswitch
// to per-opcode handler methods — the branchiest of the subjects.
func genAvrora(scale Scale) *Subject {
	r := newRng(0xa7404a)
	p := &bytecode.Program{Entry: bytecode.NoMethod}

	var leaves []bytecode.MethodID
	for i := 0; i < 28; i++ {
		leaves = append(leaves, p.AddMethod(genLeaf("Ops", i, r)).ID)
	}

	const nHandlers = 12
	var handlers []bytecode.MethodID
	for i := 0; i < nHandlers; i++ {
		b := bytecode.NewBuilder("Interp", fmt.Sprintf("op%d", i), 2) // (regA, regB)
		b.ReturnsValue()
		n := 1 + r.intn(3)
		for j := 0; j < n; j++ {
			emitArith(b, r, 0, 1)
		}
		if i%3 == 0 {
			b.Iload(0)
			b.Iload(1)
			b.InvokeStatic(leaves[r.intn(len(leaves))])
			b.Istore(0)
		}
		b.Iload(0)
		b.Ireturn()
		handlers = append(handlers, p.AddMethod(b.MustBuild()).ID)
	}

	// run(steps): the interpreter loop. locals: 0=steps, 1=pc, 2=regA,
	// 3=regB, 4=code array.
	b := bytecode.NewBuilder("Interp", "run", 1)
	b.ReturnsValue()
	const codeLen = 97
	b.Iconst(codeLen)
	b.NewArray()
	b.Istore(4)
	// Fill the code array deterministically: code[i] = (i*7+3) % nHandlers.
	b.Iconst(0).Istore(1)
	b.Label("fill")
	b.Iload(1).Iconst(codeLen).If(bytecode.IF_ICMPGE, "fetch0")
	b.Iload(4).Iload(1)
	b.Iload(1).Iconst(7).Imul().Iconst(3).Iadd().Iconst(nHandlers).Irem()
	b.Iastore()
	b.Iinc(1, 1).Goto("fill")
	b.Label("fetch0")
	b.Iconst(0).Istore(1)
	b.Iconst(1).Istore(2)
	b.Iconst(2).Istore(3)
	b.Label("fetch")
	b.Iload(0).If(bytecode.IFLE, "halt")
	// opcode = code[pc % codeLen]
	b.Iload(4)
	b.Iload(1).Iconst(codeLen).Irem()
	b.Iaload()
	var caseLabels []string
	for i := 0; i < nHandlers; i++ {
		caseLabels = append(caseLabels, fmt.Sprintf("H%d", i))
	}
	b.TableSwitch(0, "Hdef", caseLabels...)
	for i := 0; i < nHandlers; i++ {
		b.Label(fmt.Sprintf("H%d", i))
		b.Iload(2).Iload(3)
		b.InvokeStatic(handlers[i])
		b.Istore(2)
		b.Goto("next")
	}
	b.Label("Hdef")
	b.Iinc(2, 1)
	b.Label("next")
	b.Iinc(1, 3)
	b.Iinc(0, -1)
	b.Goto("fetch")
	b.Label("halt")
	b.Iload(2).Ireturn()
	run := p.AddMethod(b.MustBuild()).ID

	main := bytecode.NewBuilder("Interp", "main", 0)
	main.Iconst(int32(sc(9000, scale)))
	main.InvokeStatic(run)
	main.Pop()
	main.Return()
	p.Entry = p.AddMethod(main.MustBuild()).ID

	return &Subject{
		Name: "avrora", Program: p,
		Threads:     []vm.ThreadSpec{{Method: p.Entry}},
		Description: "switch-dispatch ISA simulator loop (branch-heavy, single thread)",
	}
}

// genBatik models a document-processing pipeline: deep static call chains
// with moderate branching.
func genBatik(scale Scale) *Subject {
	r := newRng(0xba71c)
	p := &bytecode.Program{Entry: bytecode.NoMethod}

	var leaves []bytecode.MethodID
	for i := 0; i < 36; i++ {
		leaves = append(leaves, p.AddMethod(genLeaf("Paint", i, r)).ID)
	}

	// A pipeline of stages, each calling the next 1-2 times plus leaves.
	const depth = 8
	prev := bytecode.NoMethod
	var stages []bytecode.MethodID
	for d := depth - 1; d >= 0; d-- {
		b := bytecode.NewBuilder("Pipeline", fmt.Sprintf("stage%d", d), 1)
		b.ReturnsValue()
		b.Iload(0)
		b.Iconst(int32(d + 1))
		b.Iadd()
		b.Istore(1)
		for c := 0; c < 1+r.intn(2); c++ {
			b.Iload(1)
			b.Iload(0)
			b.InvokeStatic(leaves[r.intn(len(leaves))])
			b.Istore(1)
		}
		if prev != bytecode.NoMethod {
			times := 1 + d%2
			for c := 0; c < times; c++ {
				b.Iload(1)
				b.InvokeStatic(prev)
				b.Istore(1)
			}
		}
		b.Iload(1)
		b.If(bytecode.IFGE, "pos")
		b.Iload(1)
		b.Ineg()
		b.Istore(1)
		b.Label("pos")
		b.Iload(1)
		b.Ireturn()
		prev = p.AddMethod(b.MustBuild()).ID
		stages = append(stages, prev)
	}
	_ = stages

	b := bytecode.NewBuilder("Pipeline", "main", 0)
	b.Iconst(0).Istore(0)
	b.Iconst(0).Istore(1)
	b.Label("loop")
	b.Iload(0).Iconst(int32(sc(400, scale))).If(bytecode.IF_ICMPGE, "done")
	b.Iload(0)
	b.InvokeStatic(prev)
	b.Iload(1).Iadd().Istore(1)
	b.Iinc(0, 1)
	b.Goto("loop")
	b.Label("done")
	b.Return()
	p.Entry = p.AddMethod(b.MustBuild()).ID

	return &Subject{
		Name: "batik", Program: p,
		Threads:     []vm.ThreadSpec{{Method: p.Entry}},
		Description: "deep call pipeline (call-heavy, single thread)",
	}
}

// genFop models layout computation: binary tree recursion with branch
// diamonds.
func genFop(scale Scale) *Subject {
	r := newRng(0xf0b)
	p := &bytecode.Program{Entry: bytecode.NoMethod}

	var leaves []bytecode.MethodID
	for i := 0; i < 24; i++ {
		leaves = append(leaves, p.AddMethod(genLeaf("Area", i, r)).ID)
	}

	// layout(depth, width): recursive.
	b := bytecode.NewBuilder("Layout", "layout", 2)
	b.ReturnsValue()
	b.Iload(0)
	b.If(bytecode.IFLE, "base")
	// left = layout(depth-1, width+1)
	b.Iload(0).Iconst(1).Isub()
	b.Iload(1).Iconst(1).Iadd()
	b.InvokeStatic(bytecode.MethodID(len(p.Methods))) // self (assigned next)
	b.Istore(2)
	// right = layout(depth-1, width^3)
	b.Iload(0).Iconst(1).Isub()
	b.Iload(1).Iconst(3).Ixor()
	b.InvokeStatic(bytecode.MethodID(len(p.Methods)))
	b.Istore(3)
	b.Iload(2).Iload(3)
	b.If(bytecode.IF_ICMPLT, "lt")
	b.Iload(2).Iload(3).Isub().Ireturn()
	b.Label("lt")
	b.Iload(3).Iload(2).Isub().Ireturn()
	b.Label("base")
	// Leaf areas do real measurement work: a small fixed-point loop, so
	// the call density of the recursion is diluted by straight-line and
	// loop execution (layout is not purely call overhead).
	b.Iconst(0).Istore(4)
	b.Label("measure")
	b.Iload(4).Iconst(10).If(bytecode.IF_ICMPGE, "measured")
	b.Iload(1).Iconst(3).Imul().Iload(4).Iadd().Istore(1)
	b.Iload(1).Iconst(0x7fff).Iand().Istore(1)
	b.Iinc(4, 1)
	b.Goto("measure")
	b.Label("measured")
	b.Iload(1)
	b.Iload(0)
	b.InvokeStatic(leaves[r.intn(len(leaves))])
	b.Ireturn()
	layout := p.AddMethod(b.MustBuild()).ID

	b = bytecode.NewBuilder("Layout", "main", 0)
	b.Iconst(0).Istore(0)
	b.Label("loop")
	b.Iload(0).Iconst(int32(sc(60, scale))).If(bytecode.IF_ICMPGE, "done")
	b.Iconst(7)
	b.Iload(0)
	b.InvokeStatic(layout)
	b.Pop()
	b.Iinc(0, 1)
	b.Goto("loop")
	b.Label("done")
	b.Return()
	p.Entry = p.AddMethod(b.MustBuild()).ID

	return &Subject{
		Name: "fop", Program: p,
		Threads:     []vm.ThreadSpec{{Method: p.Entry}},
		Description: "tree recursion with branch diamonds (single thread)",
	}
}

// genH2 models a database engine: several worker threads execute query
// loops dispatching operators through invokedyn, scanning arrays, with
// occasional exceptions caught per query.
func genH2(scale Scale) *Subject {
	r := newRng(0x42)
	p := &bytecode.Program{Entry: bytecode.NoMethod}

	var leaves []bytecode.MethodID
	for i := 0; i < 20; i++ {
		leaves = append(leaves, p.AddMethod(genLeaf("Util", i, r)).ID)
	}

	// Six operators: (row, key) -> int; operator 5 throws on key%37==0.
	var ops []bytecode.MethodID
	for i := 0; i < 6; i++ {
		b := bytecode.NewBuilder("Op", fmt.Sprintf("op%d", i), 2)
		b.ReturnsValue()
		if i == 5 {
			b.Iload(1).Iconst(37).Irem()
			b.If(bytecode.IFNE, "ok")
			b.Iconst(10)
			b.Athrow()
			b.Label("ok")
		}
		for j := 0; j < 1+r.intn(3); j++ {
			emitArith(b, r, 0, 1)
		}
		if i%2 == 0 {
			b.Iload(0).Iload(1)
			b.InvokeStatic(leaves[r.intn(len(leaves))])
			b.Istore(0)
		}
		b.Iload(0).Ireturn()
		ops = append(ops, p.AddMethod(b.MustBuild()).ID)
	}
	table := p.AddDispatchTable(ops...)

	// worker(tid, queries): locals 2=q, 3=acc, 4=rows array, 5=row.
	b := bytecode.NewBuilder("Engine", "worker", 2)
	b.ReturnsValue()
	const rows = 64
	b.Iconst(rows).NewArray().Istore(4)
	b.Iconst(0).Istore(2)
	b.Label("query")
	b.Iload(2).Iload(1).If(bytecode.IF_ICMPGE, "done")
	b.Iconst(0).Istore(5)
	b.Label("Ltry")
	b.Label("scan")
	b.Iload(5).Iconst(rows).If(bytecode.IF_ICMPGE, "endscan")
	// acc = dispatch(row, key) where key = q*31+row+tid, selected by key.
	b.Iload(5)
	b.Iload(2).Iconst(31).Imul().Iload(5).Iadd().Iload(0).Iadd()
	b.Dup().Istore(6)
	b.Iload(6)
	b.InvokeDyn(table)
	b.Istore(3)
	// rows[row] = acc
	b.Iload(4).Iload(5).Iload(3).Iastore()
	b.Iinc(5, 1)
	b.Goto("scan")
	b.Label("endscan")
	b.Goto("next")
	b.Label("Lcatch")
	b.Pop() // exception code
	b.Iinc(3, 1)
	b.Label("next")
	b.Iinc(2, 1)
	b.Goto("query")
	b.Label("done")
	b.Iload(3).Ireturn()
	b.Handler("Ltry", "Lcatch", "Lcatch", -1)
	worker := p.AddMethod(b.MustBuild()).ID

	// Per-thread entries.
	threads := make([]vm.ThreadSpec, 0, 4)
	for t := 0; t < 4; t++ {
		b := bytecode.NewBuilder("Engine", fmt.Sprintf("thread%d", t), 0)
		b.Iconst(int32(t))
		b.Iconst(int32(sc(90, scale)))
		b.InvokeStatic(worker)
		b.Pop()
		b.Return()
		id := p.AddMethod(b.MustBuild()).ID
		threads = append(threads, vm.ThreadSpec{Method: id})
	}
	p.Entry = threads[0].Method

	return &Subject{
		Name: "h2", Program: p,
		Threads:       threads,
		Multithreaded: true,
		Description:   "multi-threaded query engine: invokedyn operators, array scans, exceptions",
	}
}

// genJython models a dynamic-language runtime: a bytecode-ish loop
// dispatching through big dispatch tables (invokedyn everywhere).
func genJython(scale Scale) *Subject {
	r := newRng(0x97210)
	p := &bytecode.Program{Entry: bytecode.NoMethod}

	var leaves []bytecode.MethodID
	for i := 0; i < 30; i++ {
		leaves = append(leaves, p.AddMethod(genLeaf("Py", i, r)).ID)
	}

	var pyops []bytecode.MethodID
	for i := 0; i < 10; i++ {
		b := bytecode.NewBuilder("PyOp", fmt.Sprintf("do%d", i), 2)
		b.ReturnsValue()
		for j := 0; j < 1+r.intn(2); j++ {
			emitArith(b, r, 0, 1)
		}
		b.Iload(0).Iload(1)
		b.InvokeStatic(leaves[r.intn(len(leaves))])
		b.Ireturn()
		pyops = append(pyops, p.AddMethod(b.MustBuild()).ID)
	}
	t1 := p.AddDispatchTable(pyops[:5]...)
	t2 := p.AddDispatchTable(pyops[5:]...)

	// eval(n): locals 1=i, 2=acc.
	b := bytecode.NewBuilder("Py", "eval", 1)
	b.ReturnsValue()
	b.Iconst(0).Istore(1)
	b.Iconst(1).Istore(2)
	b.Label("loop")
	b.Iload(1).Iload(0).If(bytecode.IF_ICMPGE, "done")
	b.Iload(2).Iload(1)
	b.Iload(1).Iconst(5).Irem()
	b.InvokeDyn(t1)
	b.Istore(2)
	b.Iload(2).Iload(1)
	b.Iload(2).Iconst(5).Irem()
	b.InvokeDyn(t2)
	b.Istore(2)
	b.Iinc(1, 1)
	b.Goto("loop")
	b.Label("done")
	b.Iload(2).Ireturn()
	eval := p.AddMethod(b.MustBuild()).ID

	b = bytecode.NewBuilder("Py", "main", 0)
	b.Iconst(int32(sc(6000, scale)))
	b.InvokeStatic(eval)
	b.Pop()
	b.Return()
	p.Entry = p.AddMethod(b.MustBuild()).ID

	return &Subject{
		Name: "jython", Program: p,
		Threads:     []vm.ThreadSpec{{Method: p.Entry}},
		Description: "dynamic dispatch runtime (invokedyn-heavy, single thread)",
	}
}

// genLuindex models document indexing: nested loops hashing terms into a
// histogram array.
func genLuindex(scale Scale) *Subject {
	r := newRng(0x10fdec)
	p := &bytecode.Program{Entry: bytecode.NoMethod}
	var leaves []bytecode.MethodID
	for i := 0; i < 14; i++ {
		leaves = append(leaves, p.AddMethod(genLeaf("Hash", i, r)).ID)
	}

	// index(docs): locals 1=hist, 2=d, 3=t, 4=h.
	b := bytecode.NewBuilder("Index", "index", 1)
	b.ReturnsValue()
	const buckets = 128
	b.Iconst(buckets).NewArray().Istore(1)
	b.Iconst(0).Istore(2)
	b.Label("docs")
	b.Iload(2).Iload(0).If(bytecode.IF_ICMPGE, "done")
	b.Iconst(0).Istore(3)
	b.Label("terms")
	b.Iload(3).Iconst(24).If(bytecode.IF_ICMPGE, "enddoc")
	// h = (d*31 + t*7) and mangled
	b.Iload(2).Iconst(31).Imul()
	b.Iload(3).Iconst(7).Imul()
	b.Iadd()
	b.Istore(4)
	b.Iload(4).Iconst(13).Ixor().Istore(4)
	b.Iload(4).Iconst(0x7fffffff).Iand().Iconst(buckets).Irem().Istore(4)
	// hist[h]++
	b.Iload(1).Iload(4)
	b.Iload(1).Iload(4).Iaload()
	b.Iconst(1).Iadd()
	b.Iastore()
	// occasional leaf call
	b.Iload(3).Iconst(8).Irem()
	b.If(bytecode.IFNE, "skip")
	b.Iload(2).Iload(3)
	b.InvokeStatic(leaves[r.intn(len(leaves))])
	b.Pop()
	b.Label("skip")
	b.Iinc(3, 1)
	b.Goto("terms")
	b.Label("enddoc")
	b.Iinc(2, 1)
	b.Goto("docs")
	b.Label("done")
	b.Iload(1).Iconst(5).Iaload().Ireturn()
	index := p.AddMethod(b.MustBuild()).ID

	b = bytecode.NewBuilder("Index", "main", 0)
	b.Iconst(int32(sc(700, scale)))
	b.InvokeStatic(index)
	b.Pop()
	b.Return()
	p.Entry = p.AddMethod(b.MustBuild()).ID

	return &Subject{
		Name: "luindex", Program: p,
		Threads:     []vm.ThreadSpec{{Method: p.Entry}},
		Description: "indexing loops over histogram arrays (single thread)",
	}
}

// genLusearch is the multi-threaded search twin of luindex.
func genLusearch(scale Scale) *Subject {
	r := newRng(0x105ea)
	p := &bytecode.Program{Entry: bytecode.NoMethod}
	var leaves []bytecode.MethodID
	for i := 0; i < 14; i++ {
		leaves = append(leaves, p.AddMethod(genLeaf("Score", i, r)).ID)
	}

	// search(tid, queries): locals 2=idx array, 3=q, 4=i, 5=best.
	b := bytecode.NewBuilder("Search", "search", 2)
	b.ReturnsValue()
	const docs = 96
	b.Iconst(docs).NewArray().Istore(2)
	b.Iconst(0).Istore(4)
	b.Label("fill")
	b.Iload(4).Iconst(docs).If(bytecode.IF_ICMPGE, "qloop0")
	b.Iload(2).Iload(4)
	b.Iload(4).Iconst(17).Imul().Iload(0).Iadd()
	b.Iastore()
	b.Iinc(4, 1)
	b.Goto("fill")
	b.Label("qloop0")
	b.Iconst(0).Istore(3)
	b.Label("qloop")
	b.Iload(3).Iload(1).If(bytecode.IF_ICMPGE, "done")
	b.Iconst(0).Istore(5)
	b.Iconst(0).Istore(4)
	b.Label("scan")
	b.Iload(4).Iconst(docs).If(bytecode.IF_ICMPGE, "endq")
	// score = idx[i] ^ (q*3)
	b.Iload(2).Iload(4).Iaload()
	b.Iload(3).Iconst(3).Imul()
	b.Ixor()
	b.Istore(6)
	b.Iload(6).Iload(5)
	b.If(bytecode.IF_ICMPLE, "noscore")
	b.Iload(6).Istore(5)
	b.Label("noscore")
	// early exit branch
	b.Iload(5).Iconst(100000).If(bytecode.IF_ICMPGT, "endq")
	b.Iinc(4, 1)
	b.Goto("scan")
	b.Label("endq")
	b.Iload(5).Iload(3)
	b.InvokeStatic(leaves[r.intn(len(leaves))])
	b.Pop()
	b.Iinc(3, 1)
	b.Goto("qloop")
	b.Label("done")
	b.Iload(5).Ireturn()
	search := p.AddMethod(b.MustBuild()).ID

	threads := make([]vm.ThreadSpec, 0, 4)
	for t := 0; t < 4; t++ {
		b := bytecode.NewBuilder("Search", fmt.Sprintf("thread%d", t), 0)
		b.Iconst(int32(t))
		b.Iconst(int32(sc(120, scale)))
		b.InvokeStatic(search)
		b.Pop()
		b.Return()
		threads = append(threads, vm.ThreadSpec{Method: p.AddMethod(b.MustBuild()).ID})
	}
	p.Entry = threads[0].Method

	return &Subject{
		Name: "lusearch", Program: p,
		Threads:       threads,
		Multithreaded: true,
		Description:   "multi-threaded search loops with early exits",
	}
}

// genPmd models static analysis: multi-threaded recursive AST walks with a
// node-kind switch and exceptions on malformed nodes.
func genPmd(scale Scale) *Subject {
	r := newRng(0x9a4d)
	p := &bytecode.Program{Entry: bytecode.NoMethod}
	var leaves []bytecode.MethodID
	for i := 0; i < 20; i++ {
		leaves = append(leaves, p.AddMethod(genLeaf("Rule", i, r)).ID)
	}

	// visit(node, depth): switch on node%5; kind 4 throws when depth big.
	b := bytecode.NewBuilder("Ast", "visit", 2)
	b.ReturnsValue()
	selfID := bytecode.MethodID(len(p.Methods))
	b.Iload(1)
	b.If(bytecode.IFLE, "leafcase")
	b.Iload(0).Iconst(5).Irem()
	b.TableSwitch(0, "Kdef", "K0", "K1", "K2", "K3", "K4")
	b.Label("K0")
	b.Iload(0).Iconst(2).Imul().Iconst(1).Iadd()
	b.Iload(1).Iconst(1).Isub()
	b.InvokeStatic(selfID)
	b.Ireturn()
	b.Label("K1")
	b.Iload(0).Iconst(3).Imul()
	b.Iload(1).Iconst(1).Isub()
	b.InvokeStatic(selfID)
	b.Iload(0).Iconst(7).Iadd()
	b.Iload(1).Iconst(2).Isub()
	b.InvokeStatic(selfID)
	b.Iadd()
	b.Ireturn()
	b.Label("K2")
	b.Iload(0).Iload(1)
	b.InvokeStatic(leaves[r.intn(len(leaves))])
	b.Ireturn()
	b.Label("K3")
	b.Iload(0).Iconst(1).Ishr()
	b.Iload(1).Iconst(1).Isub()
	b.InvokeStatic(selfID)
	b.Ireturn()
	b.Label("K4")
	b.Iconst(11)
	b.Athrow()
	b.Label("Kdef")
	b.Iload(0).Ireturn()
	b.Label("leafcase")
	b.Iload(0).Iload(1)
	b.InvokeStatic(leaves[(r.intn(len(leaves)))])
	b.Ireturn()
	visit := p.AddMethod(b.MustBuild()).ID

	// analyze(tid, files): try { visit } catch { count }.
	b = bytecode.NewBuilder("Ast", "analyze", 2)
	b.ReturnsValue()
	b.Iconst(0).Istore(2)
	b.Iconst(0).Istore(3)
	b.Label("files")
	b.Iload(2).Iload(1).If(bytecode.IF_ICMPGE, "done")
	b.Label("Ltry")
	b.Iload(2).Iconst(13).Imul().Iload(0).Iadd()
	b.Iconst(6)
	b.InvokeStatic(visit)
	b.Iload(3).Iadd().Istore(3)
	b.Goto("next")
	b.Label("Lcatch")
	b.Pop()
	b.Iinc(3, 1)
	b.Label("next")
	b.Iinc(2, 1)
	b.Goto("files")
	b.Label("done")
	b.Iload(3).Ireturn()
	b.Handler("Ltry", "Lcatch", "Lcatch", -1)
	analyze := p.AddMethod(b.MustBuild()).ID

	threads := make([]vm.ThreadSpec, 0, 4)
	for t := 0; t < 4; t++ {
		b := bytecode.NewBuilder("Ast", fmt.Sprintf("thread%d", t), 0)
		b.Iconst(int32(t))
		b.Iconst(int32(sc(2200, scale)))
		b.InvokeStatic(analyze)
		b.Pop()
		b.Return()
		threads = append(threads, vm.ThreadSpec{Method: p.AddMethod(b.MustBuild()).ID})
	}
	p.Entry = threads[0].Method

	return &Subject{
		Name: "pmd", Program: p,
		Threads:       threads,
		Multithreaded: true,
		Description:   "multi-threaded recursive AST walks with switches and exceptions",
	}
}

// genSunflow models a raytracer's numeric kernels: tight nested loops with
// per-iteration indirect shading calls — the highest trace generation rate
// of the subjects, as the paper observes for sunflow.
func genSunflow(scale Scale) *Subject {
	r := newRng(0x50f10)
	p := &bytecode.Program{Entry: bytecode.NoMethod}

	var mathLeaves []bytecode.MethodID
	for i := 0; i < 8; i++ {
		mathLeaves = append(mathLeaves, p.AddMethod(genLeaf("Vec", i, r)).ID)
	}
	var shaders []bytecode.MethodID
	for i := 0; i < 6; i++ {
		b := bytecode.NewBuilder("Shader", fmt.Sprintf("shade%d", i), 2)
		b.ReturnsValue()
		emitArith(b, r, 0, 1)
		if i%2 == 0 {
			b.Iload(0).Iload(1)
			b.InvokeStatic(mathLeaves[r.intn(len(mathLeaves))])
			b.Istore(0)
		}
		b.Iload(0).Iload(1)
		b.If(bytecode.IF_ICMPLT, "lt")
		b.Iload(0).Iconst(3).Ishr().Ireturn()
		b.Label("lt")
		b.Iload(1).Iconst(1).Ishl().Ireturn()
		shaders = append(shaders, p.AddMethod(b.MustBuild()).ID)
	}
	table := p.AddDispatchTable(shaders...)

	// render(frames): locals 1=x, 2=y, 3=c, 4=f.
	b := bytecode.NewBuilder("Render", "render", 1)
	b.ReturnsValue()
	b.Iconst(0).Istore(4)
	b.Iconst(0).Istore(3)
	b.Label("frame")
	b.Iload(4).Iload(0).If(bytecode.IF_ICMPGE, "done")
	b.Iconst(0).Istore(1)
	b.Label("xloop")
	b.Iload(1).Iconst(18).If(bytecode.IF_ICMPGE, "endframe")
	b.Iconst(0).Istore(2)
	b.Label("yloop")
	b.Iload(2).Iconst(18).If(bytecode.IF_ICMPGE, "endx")
	// Every fourth sample hits geometry: c += shade(x*y, c) through the
	// shader table (an indirect call, i.e. a TIP); other samples are pure
	// arithmetic with a bounds branch (TNT only).
	b.Iload(2).Iconst(3).Iand()
	b.If(bytecode.IFNE, "cheap")
	b.Iload(1).Iload(2).Imul()
	b.Iload(3)
	b.Iload(1).Iload(2).Iadd().Iconst(6).Irem()
	b.InvokeDyn(table)
	b.Iload(3).Iadd().Istore(3)
	b.Goto("step")
	b.Label("cheap")
	b.Iload(3).Iload(1).Ixor().Iconst(2).Ishl().Istore(3)
	b.Iload(3)
	b.If(bytecode.IFGE, "step")
	b.Iload(3).Ineg().Istore(3)
	b.Label("step")
	b.Iinc(2, 1)
	b.Goto("yloop")
	b.Label("endx")
	b.Iinc(1, 1)
	b.Goto("xloop")
	b.Label("endframe")
	b.Iinc(4, 1)
	b.Goto("frame")
	b.Label("done")
	b.Iload(3).Ireturn()
	render := p.AddMethod(b.MustBuild()).ID

	b = bytecode.NewBuilder("Render", "main", 0)
	b.Iconst(int32(sc(42, scale)))
	b.InvokeStatic(render)
	b.Pop()
	b.Return()
	p.Entry = p.AddMethod(b.MustBuild()).ID

	return &Subject{
		Name: "sunflow", Program: p,
		Threads:     []vm.ThreadSpec{{Method: p.Entry}},
		Description: "numeric kernels with per-iteration indirect shading calls (highest trace rate)",
	}
}
