package workload

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/vm"
)

func TestAllSubjectsGenerateAndVerify(t *testing.T) {
	subs, err := LoadAll(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 9 {
		t.Fatalf("got %d subjects, want 9", len(subs))
	}
	for _, s := range subs {
		if err := bytecode.Verify(s.Program); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if len(s.Threads) == 0 {
			t.Errorf("%s: no threads", s.Name)
		}
		if s.Multithreaded != (len(s.Threads) > 1) {
			t.Errorf("%s: multithreaded flag inconsistent", s.Name)
		}
	}
}

func TestSubjectsDeterministic(t *testing.T) {
	a := MustLoad("h2", 0.1)
	b := MustLoad("h2", 0.1)
	if bytecode.Disassemble(a.Program) != bytecode.Disassemble(b.Program) {
		t.Fatal("h2 generation is not deterministic")
	}
}

func TestAllSubjectsRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s := MustLoad(name, 0.1)
			m := vm.New(s.Program, vm.DefaultConfig())
			stats, err := m.Run(s.Threads)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ExecutedBytecodes < 1000 {
				t.Errorf("%s executed only %d bytecodes", name, stats.ExecutedBytecodes)
			}
			t.Logf("%s: bytecodes=%d cycles=%d compilations=%d uncaught=%d",
				name, stats.ExecutedBytecodes, stats.Cycles, stats.Compilations, stats.UncaughtThrows)
			if stats.UncaughtThrows > 0 {
				t.Errorf("%s had %d uncaught exceptions", name, stats.UncaughtThrows)
			}
		})
	}
}
