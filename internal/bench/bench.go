// Package bench defines the BENCH_<n>.json performance-snapshot schema
// (DESIGN.md §12) and its guard-band comparison. Each PR that touches the
// hot path commits one snapshot, so the repository carries a recorded
// perf trajectory instead of anecdotes in commit messages.
//
// The snapshot has three sections:
//
//   - kernels: testing.Benchmark results for the steady-state kernels
//     (NFA MatchFromScratch, event Tokenize, stitcher carve) — ns/op,
//     allocs/op, B/op, and derived per-second rates;
//   - streaming: end-to-end replay of a chunked archive — trace bytes/s
//     and bytecodes reconstructed/s at a given worker count;
//   - subjects: batch-analysis wall-clock per benchmark subject;
//   - fleet (optional): sharded-ingest throughput, the same session set
//     pushed through a coordinator onto 1 node and onto N.
//
// Wall-clock numbers move with the machine and its load; allocs/op is a
// property of the code alone. The CI guard therefore compares only
// allocs/op, with a tolerance for runtime noise (size-class rounding,
// map growth timing).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Kernel is one testing.Benchmark result.
type Kernel struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// UnitsPerSec is the kernel's natural rate: tokens/s for Tokenize,
	// matched tokens/s for MatchFromScratch, carved items/s for the
	// stitcher.
	UnitsPerSec float64 `json:"units_per_sec,omitempty"`
}

// Streaming is one end-to-end archive-replay measurement.
type Streaming struct {
	Subject         string  `json:"subject"`
	Scale           float64 `json:"scale"`
	Workers         int     `json:"workers"`
	Pipelined       bool    `json:"pipelined"`
	TraceBytes      int64   `json:"trace_bytes"`
	WallMs          float64 `json:"wall_ms"` // min over Reps
	TraceMBPerSec   float64 `json:"trace_mb_per_sec"`
	Bytecodes       int64   `json:"bytecodes"`
	BytecodesPerSec float64 `json:"bytecodes_per_sec"`
}

// Subject is one batch-analysis wall-clock measurement.
type Subject struct {
	Name   string  `json:"name"`
	Scale  float64 `json:"scale"`
	WallMs float64 `json:"wall_ms"` // min over Reps
}

// Fleet is one sharded-ingest throughput measurement: the same session
// set pushed through a coordinator onto N nodes (DESIGN.md §14). The
// 1-node row is the baseline the multi-node rows are read against.
type Fleet struct {
	Nodes    int `json:"nodes"`
	Sessions int `json:"sessions"`
	// TraceBytes is the payload per session; the fleet ingests
	// Sessions x TraceBytes in total.
	TraceBytes    int64   `json:"trace_bytes"`
	WallMs        float64 `json:"wall_ms"` // min over Reps
	TraceMBPerSec float64 `json:"trace_mb_per_sec"`
}

// Report is one committed BENCH_<n>.json snapshot.
type Report struct {
	PR        int    `json:"pr"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Quick marks a smoke run: kernels only, streaming and subject
	// sweeps skipped.
	Quick bool `json:"quick,omitempty"`

	Kernels   []Kernel    `json:"kernels"`
	Streaming []Streaming `json:"streaming,omitempty"`
	Subjects  []Subject   `json:"subjects,omitempty"`
	Fleet     []Fleet     `json:"fleet,omitempty"`
}

// Kernel returns the named kernel entry, or nil.
func (r *Report) Kernel(name string) *Kernel {
	for i := range r.Kernels {
		if r.Kernels[i].Name == name {
			return &r.Kernels[i]
		}
	}
	return nil
}

// Write marshals the report as indented JSON.
func Write(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a snapshot.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := new(Report)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(r.Kernels) == 0 {
		return nil, fmt.Errorf("bench: %s: no kernel entries", path)
	}
	return r, nil
}

// Guard compares cur against base on the machine-stable metric only —
// kernel allocs/op — and returns one violation string per kernel whose
// allocation count grew by more than tol (0.2 = 20%). Kernels present in
// only one report are skipped: the guard protects against regressions in
// what both snapshots measure, not schema drift. An absolute slack of
// one allocation keeps near-zero kernels (0 vs 1) from tripping on
// rounding.
func Guard(base, cur *Report, tol float64) []string {
	var bad []string
	for i := range base.Kernels {
		b := &base.Kernels[i]
		c := cur.Kernel(b.Name)
		if c == nil {
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp*(1+tol)+1 {
			bad = append(bad, fmt.Sprintf(
				"kernel %s: allocs/op %.1f exceeds baseline %.1f by more than %.0f%%",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, tol*100))
		}
	}
	return bad
}
