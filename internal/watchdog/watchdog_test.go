package watchdog

import (
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond for up to 5s; the supervisor runs on real time, so
// tests use generous deadlines and tiny intervals.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDetectsStallOnActiveProbe(t *testing.T) {
	var progress, active, fired atomic.Uint64
	active.Store(1)
	s := New(2*time.Millisecond, 10*time.Millisecond)
	s.Register(Probe{
		Name:     "stage",
		Progress: progress.Load,
		Active:   func() bool { return active.Load() == 1 },
		OnStall:  func(string, uint64, time.Duration) { fired.Add(1) },
	})
	s.Start()
	defer s.Stop()

	waitFor(t, "stall", func() bool { return fired.Load() == 1 })

	// No progress: the episode fires once, not once per tick.
	time.Sleep(30 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Fatalf("stall fired %d times for one episode", n)
	}
	if s.Stalls() != 1 {
		t.Fatalf("Stalls() = %d, want 1", s.Stalls())
	}

	// Progress re-arms; a second stall is a new episode.
	progress.Add(1)
	waitFor(t, "second stall", func() bool { return fired.Load() == 2 })
}

func TestIdleProbeNeverStalls(t *testing.T) {
	var fired atomic.Uint64
	s := New(time.Millisecond, 2*time.Millisecond)
	s.Register(Probe{
		Name:     "idle",
		Progress: func() uint64 { return 7 },
		Active:   func() bool { return false },
		OnStall:  func(string, uint64, time.Duration) { fired.Add(1) },
	})
	s.Start()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	if fired.Load() != 0 {
		t.Fatalf("idle probe stalled %d times", fired.Load())
	}
}

func TestProgressSuppressesStall(t *testing.T) {
	var progress, fired atomic.Uint64
	s := New(time.Millisecond, 15*time.Millisecond)
	s.Register(Probe{
		Name:     "busy",
		Progress: progress.Load,
		Active:   func() bool { return true },
		OnStall:  func(string, uint64, time.Duration) { fired.Add(1) },
	})
	s.Start()
	for i := 0; i < 30; i++ {
		progress.Add(1)
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if fired.Load() != 0 {
		t.Fatalf("advancing probe stalled %d times", fired.Load())
	}
}

func TestUnregisterAndStopIdempotent(t *testing.T) {
	var fired atomic.Uint64
	s := New(time.Millisecond, 2*time.Millisecond)
	s.Register(Probe{
		Name:     "gone",
		Progress: func() uint64 { return 0 },
		Active:   func() bool { return true },
		OnStall:  func(string, uint64, time.Duration) { fired.Add(1) },
	})
	s.Unregister("gone")
	s.Start()
	s.Start() // no-op
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	s.Stop() // no-op
	if fired.Load() != 0 {
		t.Fatalf("unregistered probe fired %d times", fired.Load())
	}
}
