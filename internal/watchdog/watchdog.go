// Package watchdog supervises pipeline stages through progress heartbeats.
// Each stage registers a Probe exposing a monotone progress counter and an
// activity flag; a supervisor goroutine samples the probes and, when an
// active probe's counter stops advancing for the stall window, fires its
// OnStall hook once. Progress after a stall re-arms the probe, so a stage
// that recovers (or is restarted) is supervised again. The hooks decide
// the policy — dump diagnostics, poison a session, fail the run — the
// watchdog only detects (DESIGN.md §11).
package watchdog

import (
	"sync"
	"time"
)

// Probe is one supervised stage. All three callbacks are invoked from the
// supervisor goroutine, so they must be safe to call concurrently with the
// stage itself — atomic counters are the expected implementation.
type Probe struct {
	// Name identifies the stage in diagnostics (e.g. "stitcher_watermark",
	// "analyzer_segments", "ingest_writer").
	Name string
	// Progress returns a monotonically non-decreasing counter that advances
	// whenever the stage does useful work.
	Progress func() uint64
	// Active reports whether the stage currently has work outstanding. An
	// idle stage (no input queued) is never considered stalled.
	Active func() bool
	// OnStall fires once per stall episode, with the progress value the
	// stage has been stuck at and for how long.
	OnStall func(name string, progress uint64, stuck time.Duration)
}

// probeState tracks one probe between samples.
type probeState struct {
	probe   Probe
	last    uint64
	since   time.Time
	tripped bool
}

// Supervisor samples registered probes on a fixed interval and fires
// OnStall when an active probe makes no progress for stallAfter.
type Supervisor struct {
	interval   time.Duration
	stallAfter time.Duration

	mu     sync.Mutex
	probes map[string]*probeState
	stalls uint64
	stop   chan struct{}
	done   chan struct{}
}

// New builds a supervisor that samples every interval and declares a stall
// after stallAfter without progress. Call Start to begin sampling.
func New(interval, stallAfter time.Duration) *Supervisor {
	if interval <= 0 {
		interval = time.Second
	}
	if stallAfter < interval {
		stallAfter = interval
	}
	return &Supervisor{
		interval:   interval,
		stallAfter: stallAfter,
		probes:     make(map[string]*probeState),
	}
}

// Register adds (or replaces) a probe under its name.
func (s *Supervisor) Register(p Probe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes[p.Name] = &probeState{probe: p, last: p.Progress(), since: time.Now()}
}

// Unregister removes a probe; a stage that finished cleanly stops being
// supervised.
func (s *Supervisor) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.probes, name)
}

// Stalls returns how many stall episodes the supervisor has detected.
func (s *Supervisor) Stalls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalls
}

// Start launches the sampling goroutine. It is a no-op if already running.
func (s *Supervisor) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run(s.stop, s.done)
}

// Stop halts sampling and waits for the goroutine to exit. Probes stay
// registered; Start resumes supervision.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (s *Supervisor) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.sample(now)
		}
	}
}

// sample checks every probe once. Hooks run outside the lock so an OnStall
// that calls back into Register/Unregister cannot deadlock.
func (s *Supervisor) sample(now time.Time) {
	type firing struct {
		probe    Probe
		progress uint64
		stuck    time.Duration
	}
	var fire []firing
	s.mu.Lock()
	for _, st := range s.probes {
		cur := st.probe.Progress()
		if cur != st.last || !st.probe.Active() {
			// Progress (or idleness) re-arms the probe: a later stall is a
			// new episode.
			st.last = cur
			st.since = now
			st.tripped = false
			continue
		}
		if stuck := now.Sub(st.since); stuck >= s.stallAfter && !st.tripped {
			st.tripped = true
			s.stalls++
			fire = append(fire, firing{st.probe, cur, stuck})
		}
	}
	s.mu.Unlock()
	for _, f := range fire {
		if f.probe.OnStall != nil {
			f.probe.OnStall(f.probe.Name, f.progress, f.stuck)
		}
	}
}
