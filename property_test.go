package jportal

import (
	"fmt"
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
	"jportal/internal/core"
	"jportal/internal/metrics"
	"jportal/internal/vm"
)

// randProgram builds a small, always-terminating random program: a few leaf
// methods (arithmetic + a branch diamond), a mid method looping over leaf
// calls, and a main driving the mid method. Deterministic in seed.
func randProgram(seed uint64) *bytecode.Program {
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		x := seed
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	intn := func(n int) int { return int(next() % uint64(n)) }
	arith := []bytecode.Opcode{
		bytecode.IADD, bytecode.ISUB, bytecode.IMUL,
		bytecode.IAND, bytecode.IOR, bytecode.IXOR,
	}
	conds := []bytecode.Opcode{
		bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT,
		bytecode.IFGE, bytecode.IFGT, bytecode.IFLE,
	}

	p := &bytecode.Program{Entry: bytecode.NoMethod}
	nLeaves := 2 + intn(4)
	var leaves []bytecode.MethodID
	for i := 0; i < nLeaves; i++ {
		b := bytecode.NewBuilder("R", fmt.Sprintf("leaf%d", i), 2)
		b.ReturnsValue()
		for j := 0; j < 1+intn(3); j++ {
			b.Iload(0).Iload(1).Op(arith[intn(len(arith))]).Istore(0)
		}
		then := fmt.Sprintf("t%d", i)
		join := fmt.Sprintf("j%d", i)
		b.Iload(0)
		b.If(conds[intn(len(conds))], then)
		b.Iload(1).Iconst(int32(1 + intn(5))).Iadd().Istore(1)
		b.Goto(join)
		b.Label(then)
		b.Iload(1).Iconst(int32(1 + intn(5))).Ixor().Istore(1)
		b.Label(join)
		b.Iload(0).Iload(1).Iadd().Ireturn()
		leaves = append(leaves, p.AddMethod(b.MustBuild()).ID)
	}

	iters := 30 + intn(120)
	b := bytecode.NewBuilder("R", "mid", 1)
	b.ReturnsValue()
	b.Iconst(0).Istore(1)
	b.Iconst(0).Istore(2)
	b.Label("loop")
	b.Iload(2).Iconst(int32(iters)).If(bytecode.IF_ICMPGE, "done")
	for c := 0; c < 1+intn(2); c++ {
		b.Iload(2).Iload(1).InvokeStatic(leaves[intn(len(leaves))])
		b.Iload(1).Iadd().Istore(1)
	}
	b.Iinc(2, 1)
	b.Goto("loop")
	b.Label("done")
	b.Iload(1).Ireturn()
	mid := p.AddMethod(b.MustBuild()).ID

	mb := bytecode.NewBuilder("R", "main", 0)
	mb.Iconst(int32(2 + intn(5)))
	mb.InvokeStatic(mid)
	mb.Pop()
	mb.Return()
	p.Entry = p.AddMethod(mb.MustBuild()).ID
	return p
}

// assertFeasibleFlow checks the structural soundness of a reconstruction:
// every consecutive step pair must be connected in the ICFG (fallthrough,
// branch, switch, call, return or throw edge), or be a re-entry the
// context-insensitive formulation permits.
func assertFeasibleFlow(t *testing.T, prog *bytecode.Program, steps []core.Step) {
	t.Helper()
	g := cfg.BuildICFG(prog, cfg.DefaultOptions())
	bad := 0
	for i := 1; i < len(steps); i++ {
		from := g.Node(steps[i-1].Method, steps[i-1].PC)
		to := g.Node(steps[i].Method, steps[i].PC)
		ok := false
		for _, e := range g.Succs[from] {
			if e.To == to {
				ok = true
				break
			}
		}
		if !ok {
			bad++
			if bad <= 3 {
				t.Errorf("infeasible transition %d: m%d@%d -> m%d@%d",
					i, steps[i-1].Method, steps[i-1].PC, steps[i].Method, steps[i].PC)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d infeasible transitions of %d steps", bad, len(steps))
	}
}

// losslessC1Config builds a run configuration with no data loss, no
// scheduler jitter and the C2 tier disabled — under which reconstruction
// has no modelled imprecision left and must be exact.
func losslessC1Config() RunConfig {
	cfg := DefaultRunConfig()
	cfg.VM.C2Threshold = 1 << 60
	cfg.VM.SwitchJitterCycles = 0
	cfg.VM.Cores = 1
	cfg.PT.BufBytes = 64 << 20
	cfg.PT.DrainBytesPerKCycle = 1 << 20
	return cfg
}

func TestPropertyExactReconstructionUnderC1(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := randProgram(seed)
			if err := bytecode.Verify(prog); err != nil {
				t.Fatalf("generated program invalid: %v", err)
			}
			run, err := Run(prog, nil, losslessC1Config())
			if err != nil {
				t.Fatal(err)
			}
			an, err := Analyze(prog, run, core.DefaultPipelineConfig())
			if err != nil {
				t.Fatal(err)
			}
			th := an.Threads[0]
			truth := run.Oracle.Keys(0)
			if len(th.Steps) != len(truth) {
				t.Fatalf("step count %d != truth %d", len(th.Steps), len(truth))
			}
			var got []metrics.Key
			for _, s := range th.Steps {
				got = append(got, metrics.StepKey(int32(s.Method), s.PC))
			}
			sim := metrics.Similarity(got, truth, 4096)
			if sim < 0.98 {
				t.Errorf("similarity %.4f under lossless C1 (want ~1)", sim)
			}
			assertFeasibleFlow(t, prog, th.Steps)
		})
	}
}

func TestPropertyPDAAtLeastAsAccurate(t *testing.T) {
	// On lossless C1 runs, PDA reconstruction must never be less similar
	// to the truth than the NFA's.
	for seed := uint64(20); seed <= 26; seed++ {
		prog := randProgram(seed)
		run, err := Run(prog, nil, losslessC1Config())
		if err != nil {
			t.Fatal(err)
		}
		score := func(useCtx bool) float64 {
			pcfg := core.DefaultPipelineConfig()
			pcfg.UseCallContext = useCtx
			an, err := Analyze(prog, run, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			var got []metrics.Key
			for _, s := range an.Threads[0].Steps {
				got = append(got, metrics.StepKey(int32(s.Method), s.PC))
			}
			return metrics.Similarity(got, run.Oracle.Keys(0), 4096)
		}
		nfa, pda := score(false), score(true)
		if pda+1e-9 < nfa {
			t.Errorf("seed %d: PDA %.4f < NFA %.4f", seed, pda, nfa)
		}
	}
}

func TestPropertyDeterministicAnalysis(t *testing.T) {
	prog := randProgram(99)
	run, err := Run(prog, nil, losslessC1Config())
	if err != nil {
		t.Fatal(err)
	}
	an1, err := Analyze(prog, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	an2, err := Analyze(prog, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := an1.Threads[0].Steps, an2.Threads[0].Steps
	if len(a) != len(b) {
		t.Fatal("analysis nondeterministic in length")
	}
	for i := range a {
		if a[i].Method != b[i].Method || a[i].PC != b[i].PC {
			t.Fatalf("analysis nondeterministic at step %d", i)
		}
	}
}

// Quick guard that the JIT execution/emission engine never panics across
// many random programs at full tiering.
func TestPropertyRandomProgramsRunTraced(t *testing.T) {
	for seed := uint64(100); seed < 130; seed++ {
		prog := randProgram(seed)
		cfg := DefaultRunConfig()
		cfg.CollectOracle = false
		run, err := Run(prog, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := Analyze(prog, run, core.DefaultPipelineConfig()); err != nil {
			t.Fatalf("seed %d analyze: %v", seed, err)
		}
		_ = vm.DefaultConfig()
	}
}
