module jportal

go 1.22
