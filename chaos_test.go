package jportal

import (
	"strings"
	"testing"

	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/workload"
)

// chaosRun produces one finished run to inject faults into. cores below
// the subject's thread count forces cross-core migration, which is what
// makes per-core clock skew observable downstream.
func chaosRun(t *testing.T, subject string, scale workload.Scale, cores int) (*workload.Subject, *RunResult) {
	t.Helper()
	s := workload.MustLoad(subject, scale)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	if cores > 0 {
		rcfg.VM.Cores = cores
	}
	run, err := Run(s.Program, s.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, run
}

// TestChaosRateZeroIsGoldenEquivalent: with every fault class at zero the
// injector is a pass-through and the chaos path must produce the exact
// analysis the plain batch path does — the hardening is behavior-neutral.
func TestChaosRateZeroIsGoldenEquivalent(t *testing.T) {
	// 4 threads on 3 cores: migrations happen, so this also proves the
	// stitcher's clock-skew overlap detector stays silent on honest
	// (jittered but unskewed) sideband.
	s, run := chaosRun(t, "h2", 0.3, 3)
	batch, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	faulted, inj, err := analyzeFaulted(s.Program, run, core.DefaultPipelineConfig(), fault.Matrix{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(inj.Counts()); n != 0 {
		t.Fatalf("zero matrix injected %d fault classes", n)
	}
	equalAnalyses(t, "rate-0 chaos", batch, faulted)
	rep := faulted.Report
	if rep == nil {
		t.Fatal("analysis has no degradation report")
	}
	if rep.SegmentsQuarantined != 0 {
		t.Fatalf("clean run quarantined %d segments", rep.SegmentsQuarantined)
	}
	// A lossy-but-unfaulted run can still desync where buffer-overflow
	// gaps confuse the walker; the ledger reports exactly those (as
	// lost_sync) and nothing else. In particular no clock_skew: the
	// overlap detector must stay silent on honest jittered sideband.
	natural := 0
	for _, th := range batch.Threads {
		natural += th.Decode.NativeDesyncs
	}
	for reason, n := range rep.Quarantined {
		if reason != "lost_sync" || n != uint64(natural) {
			t.Fatalf("clean run quarantined %s×%d (natural desyncs %d): %+v",
				reason, n, natural, rep)
		}
	}
}

// TestChaosTableDeterministic: same subject, seed and rates twice — the
// rendered table (counters included) must be byte-identical.
func TestChaosTableDeterministic(t *testing.T) {
	base := fault.DefaultMatrix(42)
	rates := []float64{0, 1}
	render := func() string {
		s := workload.MustLoad("fop", 0.25)
		rcfg := DefaultRunConfig()
		rows, err := ChaosTable(s.Program, s.Threads, rcfg, core.DefaultPipelineConfig(), base, rates)
		if err != nil {
			t.Fatal(err)
		}
		return FormatChaosTable("fop", base.Seed, rows)
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("chaos table not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "rate") || !strings.Contains(a, "coverage") {
		t.Fatalf("table missing header:\n%s", a)
	}
}

// TestChaosSurvivesDefaultMatrix: the default matrix at increasing rates
// must never panic and must keep nonzero coverage — graceful degradation,
// not collapse.
func TestChaosSurvivesDefaultMatrix(t *testing.T) {
	s := workload.MustLoad("avrora", 0.25)
	rcfg := DefaultRunConfig()
	rows, err := ChaosTable(s.Program, s.Threads, rcfg, core.DefaultPipelineConfig(),
		fault.DefaultMatrix(7), []float64{0, 0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Coverage <= 0 {
			t.Errorf("rate %.2f: coverage %.4f, want > 0", r.Rate, r.Coverage)
		}
	}
	if rows[0].Coverage < rows[len(rows)-1].Coverage {
		// Not a hard law (recovery can beat luck) but with the default mix
		// clean must not be worse than the most hostile rate.
		t.Errorf("coverage at rate 0 (%.4f) below rate %.1f (%.4f)",
			rows[0].Coverage, rows[len(rows)-1].Rate, rows[len(rows)-1].Coverage)
	}
}

// TestChaosEveryClassObservable isolates each fault class and asserts the
// end-to-end contract: injection increments that class's counter, and the
// pipeline quarantines its damage under one of the typed reasons that class
// is defined to surface as.
func TestChaosEveryClassObservable(t *testing.T) {
	// Contended run (4 threads, 3 cores): threads migrate across cores,
	// without which a constant per-core skew never produces an observable
	// inconsistency (each thread would live inside one skewed clock).
	s, run := chaosRun(t, "h2", 0.3, 3)
	cases := []struct {
		class   fault.Class
		m       fault.Matrix
		reasons []string
	}{
		{fault.ClassBitFlip, fault.Matrix{Seed: 5, BitFlip: 1}, []string{"malformed_packet", "lost_sync"}},
		{fault.ClassTruncate, fault.Matrix{Seed: 5, Truncate: 0.5}, []string{"malformed_packet"}},
		{fault.ClassChunkDrop, fault.Matrix{Seed: 5, ChunkDrop: 0.5}, []string{"lost_sync"}},
		{fault.ClassChunkDup, fault.Matrix{Seed: 5, ChunkDup: 0.5}, []string{"lost_sync"}},
		{fault.ClassSidebandTear, fault.Matrix{Seed: 5, SidebandTear: 0.5}, []string{"sideband_order"}},
		{fault.ClassSidebandReorder, fault.Matrix{Seed: 5, SidebandReorder: 0.5}, []string{"sideband_order"}},
		{fault.ClassStaleJIT, fault.Matrix{Seed: 5, StaleJIT: 0.9}, []string{"lost_sync", "stale_metadata"}},
		{fault.ClassClockSkew, fault.Matrix{Seed: 5, ClockSkewMax: 100_000}, []string{"clock_skew"}},
	}
	for _, tc := range cases {
		t.Run(tc.class.Slug(), func(t *testing.T) {
			an, inj, err := analyzeFaulted(s.Program, run, core.DefaultPipelineConfig(), tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if got := inj.Counts()[tc.class.Slug()]; got == 0 {
				t.Fatalf("class %s never injected: %v", tc.class, inj.Counts())
			}
			quar := an.Report.Quarantined
			found := false
			for _, reason := range tc.reasons {
				if quar[reason] > 0 {
					found = true
				}
			}
			if !found {
				t.Errorf("class %s: no quarantine under any of %v; ledger saw %v",
					tc.class, tc.reasons, quar)
			}
		})
	}
}
