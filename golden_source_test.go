package jportal

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/meta"
	"jportal/internal/workload"
)

// goldenFixtureFile pins the PT path across the TraceSource refactor: the
// hashes in it were generated BEFORE internal/source existed, so a passing
// run proves the refactored pipeline writes byte-identical batch archives,
// byte-identical chunked archives, and the exact same analysis for every
// subject. Regenerate (only when intentionally changing the formats) with
//
//	GOLDEN_UPDATE=1 go test -run TestPTGoldenByteIdentity .
const goldenFixtureFile = "testdata/golden_pt.json"

// goldenRunConfig is the deterministic configuration the fixture was
// recorded under: small buffers so the loss/recovery path is exercised.
func goldenRunConfig() RunConfig {
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 64
	return rcfg
}

// hashDir hashes every file in dir (sorted names, name + content) so any
// byte change in any archive file — including archive.meta — shows up.
func hashDir(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		f, err := os.Open(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s\x00", n)
		if _, err := io.Copy(h, f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// hashAnalysis digests everything equalAnalyses compares: per-thread steps,
// fills, flows and decode statistics (wall-clock timings excluded).
func hashAnalysis(an *Analysis) string {
	h := sha256.New()
	for _, th := range an.Threads {
		fmt.Fprintf(h, "thread %d decoded %d recovered %d\n", th.Thread, th.DecodedSteps, th.RecoveredSteps)
		fmt.Fprintf(h, "decode %+v\n", th.Decode)
		for _, s := range th.Steps {
			fmt.Fprintf(h, "s %d %d %d %v\n", s.Method, s.PC, s.TSC, s.Recovered)
		}
		for _, fl := range th.Fills {
			fmt.Fprintf(h, "fill %d %d\n", fl.Method, len(fl.Steps))
			for _, s := range fl.Steps {
				fmt.Fprintf(h, "f %d %d %d\n", s.Method, s.PC, s.TSC)
			}
		}
		for _, fw := range th.Flows {
			fmt.Fprintf(h, "flow %v runs %d skipped %d\n", fw.Nodes, fw.Runs, fw.Skipped)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestPTGoldenByteIdentity runs every subject through the batch archive,
// the chunked archive and the analysis pipeline and compares the resulting
// hashes against the pre-refactor fixture.
func TestPTGoldenByteIdentity(t *testing.T) {
	got := make(map[string]string)
	for _, name := range workload.Names() {
		s := workload.MustLoad(name, 0.2)
		rcfg := goldenRunConfig()
		run, err := Run(s.Program, s.Threads, rcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		batchDir := filepath.Join(t.TempDir(), "batch")
		if err := SaveRun(batchDir, s.Program, run); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name+"/batch"] = hashDir(t, batchDir)

		s2 := workload.MustLoad(name, 0.2)
		chunkDir := filepath.Join(t.TempDir(), "chunked")
		var w *StreamArchiveWriter
		if _, err := RunWithSink(s2.Program, s2.Threads, rcfg,
			func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error) {
				var err error
				w, err = CreateStreamArchive(chunkDir, p, snap, ncores)
				return w, err
			}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := w.Seal(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name+"/chunked"] = hashDir(t, chunkDir)

		an, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name+"/analysis"] = hashAnalysis(an)
	}

	if os.Getenv("GOLDEN_UPDATE") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFixtureFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFixtureFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d entries)", goldenFixtureFile, len(got))
		return
	}

	buf, err := os.ReadFile(goldenFixtureFile)
	if err != nil {
		t.Fatalf("missing fixture (generate with GOLDEN_UPDATE=1): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("%s: hash diverged from pre-refactor fixture\n  want %s\n  got  %s", k, want[k], got[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: not in fixture (regenerate if a subject was added)", k)
		}
	}
}
