package jportal_test

// End-to-end tests of control-plane resilience (DESIGN.md §15): a primary
// coordinator with durable state and a standby replica share a state
// directory; the primary is killed mid-CHUNK — without resigning, the
// SIGKILL shape — while seeded network partitions harass the client, and
// the upload must still finish byte-identical: the standby assumes
// leadership within one lease, rehydrates the membership its predecessor
// persisted, expires the dead node, and re-routes the session.

import (
	"context"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jportal"
	"jportal/internal/fleet"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/netfault"
	"jportal/internal/streamfmt"
)

// coordinatorReplica is one coordinator process stand-in: election +
// coordinator + control plane + ingest handshake listener.
type coordinatorReplica struct {
	election *fleet.Election
	c        *fleet.Coordinator
	web      *httptest.Server
	ingestLn net.Listener
}

func startReplica(t *testing.T, name, stateDir string, leaseTTL time.Duration) *coordinatorReplica {
	t.Helper()
	election, err := fleet.StartElection(fleet.ElectionConfig{
		Dir: stateDir, ID: name, TTL: 200 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := fleet.NewCoordinator(fleet.CoordinatorConfig{
		LeaseTTL: leaseTTL,
		StateDir: stateDir,
		Election: election,
		Logf:     t.Logf,
	})
	web := httptest.NewServer(c.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.ServeIngest(ln)
	r := &coordinatorReplica{election: election, c: c, web: web, ingestLn: ln}
	t.Cleanup(r.kill)
	return r
}

// kill is the SIGKILL shape: everything stops at once, nothing resigns —
// the leadership lease must run out on its own. Idempotent.
func (r *coordinatorReplica) kill() {
	r.election.Close()
	r.c.Close()
	r.web.Close()
	r.ingestLn.Close()
}

func TestFleetCoordinatorFailoverMidPush(t *testing.T) {
	cases := []struct {
		subject string
		srcID   string
	}{
		{"avrora", ""},
		{"sunflow", "riscv-etrace"},
	}
	for _, tc := range cases {
		t.Run(tc.subject, func(t *testing.T) {
			localDir := filepath.Join(t.TempDir(), "local")
			collectArchiveSource(t, tc.subject, localDir, tc.srcID)
			stream, err := os.ReadFile(filepath.Join(localDir, jportal.StreamFileName))
			if err != nil {
				t.Fatal(err)
			}
			programGob, err := os.ReadFile(filepath.Join(localDir, "program.gob"))
			if err != nil {
				t.Fatal(err)
			}
			ncores, err := streamfmt.ParseHeader(stream)
			if err != nil {
				t.Fatal(err)
			}
			chunks := fleetChunks(t, stream, 4<<10)
			if len(chunks) < 4 {
				t.Fatalf("subject too small to interrupt mid-upload: %d chunks", len(chunks))
			}

			stateDir, dataDir := t.TempDir(), t.TempDir()
			primary := startReplica(t, "primary", stateDir, 400*time.Millisecond)
			if !primary.election.IsLeader() {
				t.Fatal("first replica did not assume leadership")
			}
			standby := startReplica(t, "standby", stateDir, 400*time.Millisecond)

			// Two nodes over the shared data dir, each knowing both
			// coordinator replicas.
			urls := []string{primary.web.URL, standby.web.URL}
			type nd struct {
				srv    *ingest.Server
				member *fleet.Member
				addr   string
			}
			var nodes []*nd
			for _, name := range []string{"n1", "n2"} {
				srv, err := ingest.NewServer(ingest.Config{DataDir: dataDir})
				if err != nil {
					t.Fatal(err)
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				go srv.Serve(ln)
				member, err := fleet.Join(context.Background(), fleet.MemberConfig{
					Name: name, CoordinatorURLs: urls, IngestAddr: ln.Addr().String(), Logf: t.Logf,
				})
				if err != nil {
					t.Fatal(err)
				}
				srv.SetRouter(member)
				n := &nd{srv: srv, member: member, addr: ln.Addr().String()}
				nodes = append(nodes, n)
				t.Cleanup(func() {
					n.member.Stop()
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					n.srv.Shutdown(ctx)
				})
			}

			// Seeded directional partitions (plus drops and tears) on every
			// client dial: the acceptance gauntlet, not a clean-room network.
			inj := netfault.NewInjector(netfault.DefaultMatrix(7), nil)
			id := "failover-" + tc.subject
			p, err := client.Dial(context.Background(), client.Options{
				Addrs:       []string{primary.ingestLn.Addr().String(), standby.ingestLn.Addr().String()},
				SessionID:   id,
				SourceID:    tc.srcID,
				Backoff:     5 * time.Millisecond,
				MaxBackoff:  100 * time.Millisecond,
				MaxAttempts: 500,
				RetryBudget: -1,
				Dial: inj.Dialer("client", func(ctx context.Context, addr string) (net.Conn, error) {
					var d net.Dialer
					return d.DialContext(ctx, "tcp", addr)
				}),
				Logf: t.Logf,
			}, ncores)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			if _, err := p.Send(ingest.FrameProgram, programGob); err != nil {
				t.Fatal(err)
			}
			// The primary (still leading) knows the session's owner; the
			// standby's view is not authoritative until it takes over.
			ownerName, _, ok := primary.c.Route(id)
			if !ok {
				t.Fatal("primary refused to route")
			}
			owner, survivor := nodes[0], nodes[1]
			if ownerName == "n2" {
				owner, survivor = nodes[1], nodes[0]
			}
			half := len(chunks) / 2
			for _, c := range chunks[:half] {
				if _, err := p.Send(ingest.FrameChunk, c); err != nil {
					t.Fatal(err)
				}
			}

			// Mid-CHUNK: the primary coordinator dies without resigning, and
			// so does the session's current owner — the worst failover, a
			// control-plane and data-plane loss at once. The in-flight
			// redirect target is now dead; the retry loop must walk back to
			// the entry points, reach the standby once it assumes
			// leadership, and land on the surviving node after the dead
			// one's membership lease (plus flap damping) runs out.
			primary.kill()
			killCtx, cancel := context.WithCancel(context.Background())
			cancel()
			owner.srv.Shutdown(killCtx)
			owner.member.Stop()

			deadline := time.Now().Add(15 * time.Second)
			for !standby.election.IsLeader() {
				if time.Now().After(deadline) {
					t.Fatal("standby never assumed leadership")
				}
				time.Sleep(10 * time.Millisecond)
			}
			for {
				if _, addr, ok := standby.c.Route(id); ok && addr == survivor.addr {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("standby never re-routed %q to the survivor", id)
				}
				time.Sleep(10 * time.Millisecond)
			}

			for _, c := range chunks[half:] {
				if _, err := p.Send(ingest.FrameChunk, c); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Finish(); err != nil {
				t.Fatal(err)
			}

			// The archive is byte-identical to the local collection: the
			// failover cost retries, never data.
			assertSameArchive(t, localDir, dataDir, id)
			if got := standby.election.Failovers(); got < 1 {
				t.Fatalf("coordinator_failovers = %d, want >= 1", got)
			}
			if got := standby.election.ObservedEpoch(); got < 2 {
				t.Fatalf("leadership_epoch = %d, want >= 2 (the fence must have advanced)", got)
			}
			if got := survivor.srv.Metrics().SessionsRestored.Load(); got != 1 {
				t.Fatalf("survivor SessionsRestored = %d, want 1", got)
			}
			snap := standby.c.MetricsSnapshot()
			if snap["coordinator_failovers"] < 1 || snap["leadership_epoch"] < 2 {
				t.Fatalf("failover gauges missing from the fleet snapshot: %v", snap)
			}
		})
	}
}
