package jportal

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"jportal/internal/bench"
	"jportal/internal/bytecode"
	"jportal/internal/cfg"
	"jportal/internal/core"
	"jportal/internal/meta"
	"jportal/internal/source"
	"jportal/internal/trace"
	"jportal/internal/workload"
)

// BenchOptions configures RunBenchSuite.
type BenchOptions struct {
	// PR stamps the snapshot (BENCH_<PR>.json).
	PR int
	// Quick runs the kernels only — with the same inputs as a full run,
	// so allocs/op stays comparable to a committed snapshot — and skips
	// the streaming and per-subject wall-clock sweeps.
	Quick bool
	// Scale is the streaming subject's workload scale (default 1.0).
	Scale float64
	// Workers is the streaming replay's worker count (default 8).
	Workers int
	// Reps is the repetition count for wall-clock measurements; the
	// minimum is recorded, which filters scheduler noise (default 3).
	Reps int
}

// benchLoopSrc is the MatchFromScratch kernel's subject: a loop whose
// token trace is a genuine ICFG cycle, so the matcher carries one long
// run end to end (same shape as the bench_test micro-benchmark).
const benchLoopSrc = `
method B.loop(1) returns int {
    iconst 0
    istore 1
Lhead:
    iload 1
    iload 0
    if_icmpge Ldone
    iload 1
    iconst 3
    imul
    istore 1
    iinc 1 1
    goto Lhead
Ldone:
    iload 1
    ireturn
}
method B.main(0) {
    iconst 5
    invokestatic B.loop
    pop
    return
}
entry B.main
`

func benchLoopTokens() []core.Token {
	mk := func(op bytecode.Opcode) core.Token { return core.Token{Op: op, Method: bytecode.NoMethod} }
	iter := []core.Token{
		mk(bytecode.ILOAD), mk(bytecode.ILOAD),
		{Op: bytecode.IF_ICMPGE, Method: bytecode.NoMethod, HasDir: true, Taken: false},
		mk(bytecode.ILOAD), mk(bytecode.ICONST), mk(bytecode.IMUL), mk(bytecode.ISTORE),
		mk(bytecode.IINC), mk(bytecode.GOTO),
	}
	toks := []core.Token{mk(bytecode.ICONST), mk(bytecode.ISTORE)}
	for i := 0; i < 500; i++ {
		toks = append(toks, iter...)
	}
	return toks
}

// runKernel wraps testing.Benchmark and converts its result.
func runKernel(name string, units int, fn func(b *testing.B)) bench.Kernel {
	r := testing.Benchmark(fn)
	k := bench.Kernel{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
	if units > 0 && k.NsPerOp > 0 {
		k.UnitsPerSec = float64(units) * 1e9 / k.NsPerOp
	}
	return k
}

// RunBenchSuite measures the hot-path steady-state kernels and (unless
// opts.Quick) the end-to-end streaming throughput and per-subject batch
// wall-clock, returning the BENCH_<n>.json snapshot (DESIGN.md §12).
func RunBenchSuite(opts BenchOptions) (*bench.Report, error) {
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.Workers == 0 {
		opts.Workers = 8
	}
	if opts.Reps == 0 {
		opts.Reps = 3
	}
	rep := &bench.Report{
		PR:        opts.PR,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     opts.Quick,
	}

	// ---- Kernel: NFA MatchFromScratch (caller-held scratch, §4) ----
	prog := bytecode.MustAssemble(benchLoopSrc)
	m := core.NewMatcher(cfg.BuildICFG(prog, cfg.DefaultOptions()))
	toks := benchLoopTokens()
	starts := m.NodesWithOp(toks[0].Op)
	sc := m.NewScratch()
	rep.Kernels = append(rep.Kernels, runKernel("MatchFromScratch", len(toks), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := m.MatchFromScratch(sc, starts, toks); !r.Complete {
				b.Fatalf("rejected at %d of %d", r.Matched, len(toks))
			}
		}
	}))

	// ---- Kernels over a real trace: Tokenize and the stitcher carve ----
	s := workload.MustLoad("h2", 0.25)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	run, err := Run(s.Program, s.Threads, rcfg)
	if err != nil {
		return nil, err
	}
	run.Snapshot.Seal()

	// Tokenize: decode the busiest thread's stitched stream to native
	// events once, then measure the steady-state lowering — a persistent
	// tokenizer fed the same events every op, completed segments
	// discarded — so the op cost is the token arena's, not setup's.
	src, err := run.Source()
	if err != nil {
		return nil, err
	}
	threads := trace.SplitByThread(run.Traces, run.Sideband, src.Traits())
	var busiest int
	for i := range threads {
		if len(threads[i].Items) > len(threads[busiest].Items) {
			busiest = i
		}
	}
	if len(threads) == 0 || len(threads[busiest].Items) == 0 {
		return nil, fmt.Errorf("bench: subject produced no stitched items")
	}
	events := append([]source.Event(nil),
		src.NewDecoder(run.Snapshot).Decode(threads[busiest].Items)...)
	const tokChunk = 512
	var chunks [][]source.Event
	for off := 0; off < len(events); off += tokChunk {
		end := off + tokChunk
		if end > len(events) {
			end = len(events)
		}
		chunks = append(chunks, events[off:end])
	}
	_, tstats := core.TokenizeEvents(s.Program, events)
	tokPerOp := tstats.Tokens / len(chunks)
	tk := core.NewStreamTokenizer(s.Program)
	rep.Kernels = append(rep.Kernels, runKernel("Tokenize", tokPerOp, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// One op = one event chunk lowered in steady state; Finish
			// closes the open segment so the slab advances instead of
			// growing one ever-larger segment, and Take-semantics drop
			// the output. The arena keeps this at ~1 alloc/op: the
			// completed-segments slice, plus a slab every 4096 tokens.
			tk.Feed(chunks[i%len(chunks)])
			tk.Finish()
		}
	}))

	// WalkerDecode: the neutral decode driver (internal/source.Walker)
	// behind every backend — one full packet-stream decode of the busiest
	// thread per op, with a persistent decoder so the reused event buffer
	// keeps the steady state allocation-free and the guard band pins the
	// refactored decode path.
	dec := src.NewDecoder(run.Snapshot)
	rep.Kernels = append(rep.Kernels, runKernel("WalkerDecode", len(threads[busiest].Items), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dec.Decode(threads[busiest].Items)
		}
	}))

	// Carve: one full incremental stitch — sideband, infinite
	// watermarks, per-core feeds, finish — per op.
	ncores := 1
	totalItems := 0
	for i := range run.Traces {
		if n := run.Traces[i].Core + 1; n > ncores {
			ncores = n
		}
		totalItems += len(run.Traces[i].Items)
	}
	rep.Kernels = append(rep.Kernels, runKernel("CarveStitch", totalItems, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := trace.NewStreamStitcher(ncores, src.Traits())
			st.AddSideband(run.Sideband)
			for c := 0; c < ncores; c++ {
				st.Watermark(c, math.MaxUint64)
			}
			for j := range run.Traces {
				if err := st.Feed(run.Traces[j].Core, run.Traces[j].Items); err != nil {
					b.Fatal(err)
				}
			}
			st.Finish()
		}
	}))

	if opts.Quick {
		return rep, nil
	}

	// ---- Streaming end-to-end: archive replay at opts.Workers ----
	dir, err := os.MkdirTemp("", "jportal-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	arch := filepath.Join(dir, "chunked")
	ss := workload.MustLoad("h2", workload.Scale(opts.Scale))
	var w *StreamArchiveWriter
	if _, err := RunWithSink(ss.Program, ss.Threads, DefaultRunConfig(),
		func(p *bytecode.Program, snap *meta.Snapshot, nc int) (TraceSink, error) {
			var err error
			w, err = CreateStreamArchive(arch, p, snap, nc)
			return w, err
		}); err != nil {
		return nil, err
	}
	if err := w.Seal(); err != nil {
		return nil, err
	}
	fi, err := os.Stat(filepath.Join(arch, "stream.jpt"))
	if err != nil {
		return nil, err
	}
	for _, pipelined := range []bool{false, true} {
		pcfg := core.DefaultPipelineConfig()
		pcfg.Workers = opts.Workers
		pcfg.Pipelined = pipelined
		best := time.Duration(math.MaxInt64)
		var steps int64
		for r := 0; r < opts.Reps; r++ {
			t0 := time.Now()
			_, an, err := AnalyzeStreamArchive(arch, pcfg, false, 0)
			if err != nil {
				return nil, err
			}
			if d := time.Since(t0); d < best {
				best = d
			}
			steps = 0
			for i := range an.Threads {
				steps += int64(len(an.Threads[i].Steps))
			}
		}
		sec := best.Seconds()
		rep.Streaming = append(rep.Streaming, bench.Streaming{
			Subject: "h2",
			Scale:   opts.Scale,
			Workers: opts.Workers,
			// Record the mode that actually ran: on a single-CPU runtime
			// the session falls back to the synchronous path (see
			// core.PipelineConfig.EffectivePipelined).
			Pipelined:       pcfg.EffectivePipelined(),
			TraceBytes:      fi.Size(),
			WallMs:          sec * 1e3,
			TraceMBPerSec:   float64(fi.Size()) / (1 << 20) / sec,
			Bytecodes:       steps,
			BytecodesPerSec: float64(steps) / sec,
		})
	}

	// ---- Per-subject batch wall-clock ----
	const subjScale = 0.5
	for _, name := range workload.Names() {
		sub := workload.MustLoad(name, subjScale)
		srun, err := Run(sub.Program, sub.Threads, rcfg)
		if err != nil {
			return nil, err
		}
		best := time.Duration(math.MaxInt64)
		for r := 0; r < opts.Reps; r++ {
			t0 := time.Now()
			if _, err := Analyze(sub.Program, srun, core.DefaultPipelineConfig()); err != nil {
				return nil, err
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		rep.Subjects = append(rep.Subjects, bench.Subject{
			Name: name, Scale: subjScale, WallMs: best.Seconds() * 1e3,
		})
	}
	return rep, nil
}
