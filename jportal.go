// Package jportal is the public API of the JPortal reproduction: precise
// and efficient control-flow tracing for JVM-like programs with (simulated)
// Intel Processor Trace.
//
// The typical flow mirrors the paper's two phases:
//
//	prog := bytecode.MustAssemble(src)        // or the workload generator
//	run, _ := jportal.Run(prog, nil, jportal.DefaultRunConfig())  // online
//	an, _ := jportal.Analyze(prog, run, core.DefaultPipelineConfig()) // offline
//	cov := jportal.Coverage(prog, an)
//	hot := jportal.HotMethods(an, 10)
//
// Run executes the program on the simulated JVM with the PT collector
// attached (online collection: hardware trace + machine-code metadata,
// paper §3/§6); Analyze segregates the per-core traces by thread, decodes
// them, projects them onto the ICFG and recovers the data-loss holes
// (offline decoding, §4/§5).
package jportal

import (
	"errors"
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/source"
	"jportal/internal/vm"

	// Link in the RISC-V E-Trace backend alongside the reference Intel PT
	// one (registered via core's ptdecode import), so archives and
	// RunConfig.Source resolve either by ID.
	_ "jportal/internal/etrace"
)

// RunConfig bundles the online-phase configuration.
type RunConfig struct {
	VM vm.Config
	// Source selects the trace source by registry ID ("" = "intel-pt").
	// The source owns the packet format: its collector encodes the VM's
	// native events, its decoder turns archived packets back into the
	// neutral event stream.
	Source string
	// PT configures the collector (buffer sizes, drain cadence); the knobs
	// are source-independent, the name is historical.
	PT pt.Config
	// CollectOracle attaches the ground-truth oracle (simulation-only
	// affordance used to measure accuracy; it does not exist on real
	// hardware).
	CollectOracle bool
	// DisableTracing runs without PT (baseline timing runs).
	DisableTracing bool
	// SinkChunkItems is the per-core chunk size of streaming export
	// (RunWithSink); 0 means pt.DefaultSinkFlushItems. Ignored by Run.
	SinkChunkItems int
}

// Validate rejects configurations the online phase cannot run with, before
// they surface as a zero-core deadlock or a collector that drops or never
// drains everything.
func (c RunConfig) Validate() error {
	if c.VM.Cores <= 0 {
		return fmt.Errorf("jportal: VM.Cores must be positive, got %d", c.VM.Cores)
	}
	if c.SinkChunkItems < 0 {
		return fmt.Errorf("jportal: SinkChunkItems %d is negative (0 means the default)", c.SinkChunkItems)
	}
	if !c.DisableTracing {
		if _, err := source.Lookup(c.Source); err != nil {
			return fmt.Errorf("jportal: %w", err)
		}
		if err := c.PT.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultRunConfig mirrors the paper's defaults (128MB-class buffers,
// scaled to simulation size).
func DefaultRunConfig() RunConfig {
	return RunConfig{VM: vm.DefaultConfig(), PT: pt.DefaultConfig(), CollectOracle: true}
}

// RunResult is everything the online phase produces.
type RunResult struct {
	Stats    *vm.Stats
	Traces   []source.CoreTrace
	Sideband []vm.SwitchRecord
	Snapshot *meta.Snapshot
	Oracle   *Oracle
	// SourceID names the trace source that produced Traces ("" is read as
	// "intel-pt", so pre-refactor results and archives keep working).
	SourceID string
	// GenBytes is the total trace volume generated (exported + lost).
	GenBytes uint64
}

// Source resolves the run's trace source from its recorded ID.
func (r *RunResult) Source() (source.Source, error) {
	s, err := source.Lookup(r.SourceID)
	if err != nil {
		return nil, fmt.Errorf("jportal: %w", err)
	}
	return s, nil
}

// Run executes prog's threads under the simulated JVM with PT collection.
// A nil threads slice runs the program entry as a single thread.
func Run(prog *bytecode.Program, threads []vm.ThreadSpec, cfg RunConfig) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := bytecode.Verify(prog); err != nil {
		return nil, err
	}
	if threads == nil {
		threads = []vm.ThreadSpec{{Method: prog.Entry}}
	}
	m := vm.New(prog, cfg.VM)
	var src source.Source
	var col source.Collector
	if !cfg.DisableTracing {
		var err error
		if src, err = source.Lookup(cfg.Source); err != nil {
			return nil, fmt.Errorf("jportal: %w", err)
		}
		col = src.NewCollector(cfg.PT, cfg.VM.Cores)
		m.Tracer = col
	}
	var oracle *Oracle
	if cfg.CollectOracle {
		oracle = NewOracle(len(threads))
		m.Listener = oracle
	}
	stats, err := m.Run(threads)
	if err != nil {
		return nil, err
	}
	res := &RunResult{
		Stats:    stats,
		Sideband: m.Sideband(),
		Snapshot: m.Snapshot,
		Oracle:   oracle,
	}
	if col != nil {
		res.Traces = col.Finish(m.FinalTSC())
		res.GenBytes = col.GeneratedBytes()
		res.SourceID = src.ID()
	}
	return res, nil
}

// Analysis is the offline phase's output: one reconstructed control flow
// per thread.
type Analysis struct {
	Threads  []*core.ThreadResult
	Pipeline *core.Pipeline
	// Report is the run's degradation summary (DESIGN.md §10): what the
	// hardened pipeline quarantined, what recovery got back, and the
	// bytecode coverage of the surviving profile. Always present; on a
	// clean run its quarantine counters are all zero.
	Report *fault.DegradationReport
}

// Analyze decodes and reconstructs a run. It is the batch form of the
// streaming Session — everything fed at once, drained at Close — so thread
// streams are analysed concurrently on cfg.Workers goroutines (0 =
// GOMAXPROCS) and Analysis.Threads keeps deterministic thread order and
// byte-identical content for every worker count and chunking. Traces must
// be in ascending core order (Run and LoadRun both guarantee it).
func Analyze(prog *bytecode.Program, run *RunResult, cfg core.PipelineConfig) (*Analysis, error) {
	if run == nil || run.Traces == nil {
		return nil, errors.New("jportal: run has no traces (tracing disabled?)")
	}
	if cfg.Source == nil {
		// Route decoding by the run's recorded source: an archive collected
		// with the E-Trace backend decodes with it, transparently.
		src, err := run.Source()
		if err != nil {
			return nil, err
		}
		cfg.Source = src
	}
	ncores := 1
	for i := range run.Traces {
		if i > 0 && run.Traces[i].Core <= run.Traces[i-1].Core {
			return nil, fmt.Errorf("jportal: traces out of core order (core %d after core %d)",
				run.Traces[i].Core, run.Traces[i-1].Core)
		}
		if n := run.Traces[i].Core + 1; n > ncores {
			ncores = n
		}
	}
	s, err := OpenSession(prog, run.Snapshot, ncores, cfg)
	if err != nil {
		return nil, err
	}
	s.AddSideband(run.Sideband)
	for i := range run.Traces {
		if err := s.Feed(run.Traces[i].Core, run.Traces[i].Items); err != nil {
			return nil, err
		}
	}
	return s.Close()
}

// Steps returns all threads' steps concatenated (thread order).
func (a *Analysis) Steps() []core.Step {
	total := 0
	for _, t := range a.Threads {
		total += len(t.Steps)
	}
	out := make([]core.Step, 0, total)
	for _, t := range a.Threads {
		out = append(out, t.Steps...)
	}
	return out
}
