package jportal

import (
	"path/filepath"
	"testing"

	"jportal/internal/core"
	"jportal/internal/metrics"
	"jportal/internal/workload"
)

func TestArchiveRoundTrip(t *testing.T) {
	s := workload.MustLoad("fop", 0.3)
	run, err := Run(s.Program, s.Threads, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "archive")
	if err := SaveRun(dir, s.Program, run); err != nil {
		t.Fatal(err)
	}

	prog2, run2, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog2.Methods) != len(s.Program.Methods) {
		t.Fatalf("program methods: %d vs %d", len(prog2.Methods), len(s.Program.Methods))
	}
	if len(run2.Traces) != len(run.Traces) {
		t.Fatalf("traces: %d vs %d", len(run2.Traces), len(run.Traces))
	}
	if len(run2.Sideband) != len(run.Sideband) {
		t.Fatalf("sideband: %d vs %d", len(run2.Sideband), len(run.Sideband))
	}
	if len(run2.Snapshot.Compiled) != len(run.Snapshot.Compiled) {
		t.Fatalf("snapshot blobs: %d vs %d", len(run2.Snapshot.Compiled), len(run.Snapshot.Compiled))
	}

	// Analyzing the loaded archive must produce the same reconstruction
	// as analyzing the live run.
	live, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Analyze(prog2, run2, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Threads) != len(loaded.Threads) {
		t.Fatal("thread counts differ")
	}
	for i := range live.Threads {
		a, b := live.Threads[i].Steps, loaded.Threads[i].Steps
		if len(a) != len(b) {
			t.Fatalf("thread %d: %d vs %d steps", i, len(a), len(b))
		}
		var ka, kb []metrics.Key
		for j := range a {
			ka = append(ka, metrics.StepKey(int32(a[j].Method), a[j].PC))
			kb = append(kb, metrics.StepKey(int32(b[j].Method), b[j].PC))
		}
		if metrics.Similarity(ka, kb, 4096) != 1 {
			t.Fatalf("thread %d: reconstructions differ after archive round trip", i)
		}
	}
}

func TestSaveRunRequiresTraces(t *testing.T) {
	s := workload.MustLoad("fop", 0.1)
	cfg := DefaultRunConfig()
	cfg.DisableTracing = true
	run, err := Run(s.Program, s.Threads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveRun(t.TempDir(), s.Program, run); err == nil {
		t.Fatal("saved a traceless run")
	}
}

func TestLoadRunMissingDir(t *testing.T) {
	if _, _, err := LoadRun(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("loaded a missing archive")
	}
}
