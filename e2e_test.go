package jportal

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/metrics"
)

const fibSrc = `
method Test.fib(1) returns int {
    iload 0
    iconst 2
    if_icmpge Lrec
    iload 0
    ireturn
Lrec:
    iload 0
    iconst 1
    isub
    invokestatic Test.fib
    iload 0
    iconst 2
    isub
    invokestatic Test.fib
    iadd
    ireturn
}

method Test.main(0) {
    iconst 16
    invokestatic Test.fib
    istore 0
    return
}

entry Test.main
`

// TestEndToEndLossless checks the whole stack on a single-threaded run with
// buffers large enough that nothing is lost: reconstruction accuracy must
// be high (only JIT debug-info imprecision reduces it).
func TestEndToEndLossless(t *testing.T) {
	prog := bytecode.MustAssemble(fibSrc)
	cfg := DefaultRunConfig()
	cfg.VM.Cores = 1
	run, err := Run(prog, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lost uint64
	for _, tr := range run.Traces {
		lost += tr.LostBytes()
	}
	if lost != 0 {
		t.Fatalf("expected lossless run, lost %d bytes", lost)
	}
	an, err := Analyze(prog, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Threads) != 1 {
		t.Fatalf("got %d threads, want 1", len(an.Threads))
	}
	th := an.Threads[0]
	if th.Decode.Segments == 0 || len(th.Steps) == 0 {
		t.Fatalf("no reconstruction output: %+v", th.Decode)
	}

	truth := run.Oracle.Keys(0)
	got := make([]metrics.Key, len(th.Steps))
	for i, s := range th.Steps {
		got[i] = metrics.StepKey(int32(s.Method), s.PC)
	}
	sim := metrics.Similarity(got, truth, 4096)
	t.Logf("steps=%d truth=%d similarity=%.3f segments=%d tokens=%d located=%d desyncs=%d",
		len(got), len(truth), sim, th.Decode.Segments, th.Decode.Tokens,
		th.Decode.LocatedTokens, th.Decode.NativeDesyncs)
	if sim < 0.75 {
		t.Errorf("similarity %.3f too low for a lossless run", sim)
	}
	if float64(len(got)) < 0.7*float64(len(truth)) {
		t.Errorf("reconstructed only %d of %d steps", len(got), len(truth))
	}
}
