#!/bin/sh
# ci.sh - the repository's check gauntlet. Run before sending a PR.
#
#   ./ci.sh          vet + build + full tests + race-detector pass over the
#                    concurrent packages (core, trace, conc)
#
# The race pass covers the offline-phase parallelism introduced with the
# worker pool: the read-only Matcher contract, the per-core trace carve and
# the pool primitives themselves.
set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/core/... ./internal/trace/... ./internal/conc/...

echo "ci.sh: all checks passed"
