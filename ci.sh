#!/bin/sh
# ci.sh - the repository's check gauntlet. Run before sending a PR.
#
#   ./ci.sh          vet + build + full tests + race-detector pass over the
#                    concurrent packages (core, trace, conc, pt, source,
#                    etrace, ingest, fleet) and the root streaming tests +
#                    benchmark smoke
#
# The race pass covers the offline-phase parallelism introduced with the
# worker pool — the read-only Matcher contract, the per-core trace carve and
# the pool primitives themselves — plus the streaming pipeline: the chunked
# collector export, the incremental stitcher, and the Session fan-out (the
# full root suite under -race is too slow for CI, so the race pass runs the
# streaming-specific tests).
set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/core/... ./internal/trace/... ./internal/conc/... ./internal/pt/... ./internal/ring/... ./internal/source/... ./internal/etrace/...

echo "==> go test -race (root streaming tests)"
go test -race -run 'TestStream|TestAnalyzeStreamed|TestSession|TestAnalyzeDeterministicAcrossWorkers|TestPipelined|TestAsyncSink' .

echo "==> go test -race (ingest service + fleet + netfault + iofault + scrub)"
go test -race ./internal/ingest/... ./internal/fleet/... ./internal/netfault/... ./internal/iofault/... ./internal/scrub/...

echo "==> go test -race (root ingest + fleet + scrub e2e)"
go test -race -run 'TestIngest|TestFleet|TestScrub' .

echo "==> serve/push loopback smoke"
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
go build -o "$SMOKE/jportal" ./cmd/jportal
"$SMOKE/jportal" collect -chunked -scale 0.5 -out "$SMOKE/local" fop >/dev/null
"$SMOKE/jportal" serve -listen 127.0.0.1:7901 -data "$SMOKE/ingest" >"$SMOKE/serve.log" 2>&1 &
SERVE_PID=$!
for i in $(seq 1 50); do
    grep -q 'listening on' "$SMOKE/serve.log" && break
    sleep 0.1
done
"$SMOKE/jportal" push -addr 127.0.0.1:7901 -id smoke "$SMOKE/local" >/dev/null
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
cmp "$SMOKE/local/stream.jpt" "$SMOKE/ingest/smoke/stream.jpt"
cmp "$SMOKE/local/program.gob" "$SMOKE/ingest/smoke/program.gob"
echo "    loopback archive byte-identical"

echo "==> fleet smoke (primary+standby coordinators, SIGKILL node and primary mid-fleet)"
# A real multi-process fleet over one shared data dir, with a durable
# control plane: a primary and a standby coordinator share a state dir and
# a leadership lease. Two sessions are pushed through the coordinators;
# one node is SIGKILLed while the fleet is live, then the PRIMARY
# COORDINATOR is SIGKILLed mid-push. The standby must assume leadership
# within one leader lease, rehydrate the membership its predecessor
# persisted, and route the resumed sessions — both archives must still
# come out byte-identical. The deterministic mid-CHUNK variants are pinned
# by TestFleetNodeLossResume and TestFleetCoordinatorFailoverMidPush.
COORDS=http://127.0.0.1:7912,http://127.0.0.1:7916
"$SMOKE/jportal" coordinate -listen 127.0.0.1:7911 -http 127.0.0.1:7912 -lease 1s \
    -data "$SMOKE/ctrl" -name primary -leader-lease 1s >"$SMOKE/coord.log" 2>&1 &
COORD_PID=$!
for i in $(seq 1 50); do
    grep -q 'control plane' "$SMOKE/coord.log" && break
    sleep 0.1
done
"$SMOKE/jportal" coordinate -listen 127.0.0.1:7915 -http 127.0.0.1:7916 -lease 1s \
    -data "$SMOKE/ctrl" -name standby -leader-lease 1s >"$SMOKE/standby.log" 2>&1 &
STANDBY_PID=$!
for i in $(seq 1 50); do
    grep -q 'control plane' "$SMOKE/standby.log" && break
    sleep 0.1
done
"$SMOKE/jportal" serve -listen 127.0.0.1:7913 -data "$SMOKE/fleet" \
    -coordinator "$COORDS" -node fleet-a >"$SMOKE/node-a.log" 2>&1 &
NODE_A_PID=$!
"$SMOKE/jportal" serve -listen 127.0.0.1:7914 -data "$SMOKE/fleet" \
    -coordinator "$COORDS" -node fleet-b >"$SMOKE/node-b.log" 2>&1 &
NODE_B_PID=$!
for i in $(seq 1 50); do
    grep -q 'joined fleet' "$SMOKE/node-a.log" && grep -q 'joined fleet' "$SMOKE/node-b.log" && break
    sleep 0.1
done
"$SMOKE/jportal" push -addr 127.0.0.1:7911,127.0.0.1:7915 -id fleet-s1 "$SMOKE/local" >/dev/null &
PUSH1_PID=$!
"$SMOKE/jportal" push -addr 127.0.0.1:7911,127.0.0.1:7915 -id fleet-s2 "$SMOKE/local" >/dev/null &
PUSH2_PID=$!
kill -9 "$NODE_A_PID"
wait "$NODE_A_PID" 2>/dev/null || true
kill -9 "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
wait "$PUSH1_PID"
wait "$PUSH2_PID"
for i in $(seq 1 100); do
    grep -q 'assumed leadership' "$SMOKE/standby.log" && break
    sleep 0.1
done
# Queries rotate past the dead primary to the standby leader.
"$SMOKE/jportal" fleet -coordinator "$COORDS" nodes >"$SMOKE/fleet-nodes.txt"
"$SMOKE/jportal" fleet -coordinator "$COORDS" metrics >"$SMOKE/fleet-metrics.json"
grep -q '"fleet_nodes"' "$SMOKE/fleet-metrics.json"
grep -Eq '"coordinator_failovers": [1-9]' "$SMOKE/fleet-metrics.json"
kill -TERM "$NODE_B_PID"
wait "$NODE_B_PID"
kill -TERM "$STANDBY_PID"
wait "$STANDBY_PID"
cmp "$SMOKE/local/stream.jpt" "$SMOKE/fleet/fleet-s1/stream.jpt"
cmp "$SMOKE/local/stream.jpt" "$SMOKE/fleet/fleet-s2/stream.jpt"
cmp "$SMOKE/local/program.gob" "$SMOKE/fleet/fleet-s1/program.gob"
cmp "$SMOKE/local/program.gob" "$SMOKE/fleet/fleet-s2/program.gob"
"$SMOKE/jportal" fleet -data "$SMOKE/fleet" report | grep -q 'fleet report: 2 session(s), 0 skipped'
echo "    both sessions survived the node + primary-coordinator kills, archives byte-identical"

echo "==> chaos smoke (fixed seed, deterministic report, nonzero coverage)"
# The chaos command exits nonzero if any rate's coverage collapses to zero,
# and a panic anywhere in the hardened pipeline fails the run outright; the
# cmp asserts the whole report is reproducible for a fixed seed.
"$SMOKE/jportal" chaos -subjects fop,avrora -scale 0.2 -seed 42 -rates 0,1,2 >"$SMOKE/chaos1.txt"
"$SMOKE/jportal" chaos -subjects fop,avrora -scale 0.2 -seed 42 -rates 0,1,2 >"$SMOKE/chaos2.txt"
cmp "$SMOKE/chaos1.txt" "$SMOKE/chaos2.txt"
echo "    chaos report deterministic"

echo "==> chaos -fleet smoke (network faults, fixed seed, archives identical)"
# The network-fault counterpart: archives pushed through an in-process
# fleet whose every edge runs behind the seeded netfault injector. The
# command exits nonzero if any session's archive diverges (rate 0 pins the
# injector's passthrough: byte-identical to the no-netfault path), and the
# cmp asserts the sweep table is reproducible for a fixed seed.
"$SMOKE/jportal" chaos -fleet -subjects fop -scale 0.2 -seed 7 -rates 0,1,2 >"$SMOKE/chaosf1.txt"
"$SMOKE/jportal" chaos -fleet -subjects fop -scale 0.2 -seed 7 -rates 0,1,2 >"$SMOKE/chaosf2.txt"
cmp "$SMOKE/chaosf1.txt" "$SMOKE/chaosf2.txt"
echo "    chaos -fleet sweep deterministic, no data lost under faults"

echo "==> chaos -disk smoke (storage faults, scrub-and-repair, fixed seed)"
# The storage-fault counterpart: uploads run against an ingest server whose
# filesystem is behind the seeded iofault injector (ENOSPC, EIO, torn
# writes), then a planted torn-tail victim and a corrupt sealed casualty
# are scrubbed — the victim repaired and resumed, the casualty
# quarantined. The command exits nonzero on silent corruption (a completed
# upload whose archive diverges), and the cmp pins the sweep table's
# determinism for a fixed seed.
"$SMOKE/jportal" chaos -disk -subjects fop -scale 0.2 -seed 7 -rates 0,1,2 >"$SMOKE/chaosd1.txt" 2>/dev/null
"$SMOKE/jportal" chaos -disk -subjects fop -scale 0.2 -seed 7 -rates 0,1,2 >"$SMOKE/chaosd2.txt" 2>/dev/null
cmp "$SMOKE/chaosd1.txt" "$SMOKE/chaosd2.txt"
echo "    chaos -disk sweep deterministic, completed uploads byte-identical"

echo "==> scrub smoke (torn tail planted, repaired, resumed push identical)"
# The storage-durability loop end to end, with real processes: interrupt a
# push mid-upload (SIGKILL, as in the fleet smoke), corrupt the tail the
# way a torn write would, `scrub -repair`, re-push, and require the final
# archive byte-identical. The deterministic variant is pinned by
# TestScrubRepairTornTailThenResume.
"$SMOKE/jportal" serve -listen 127.0.0.1:7921 -data "$SMOKE/scrub" >"$SMOKE/scrub-serve.log" 2>&1 &
SCRUB_SERVE_PID=$!
for i in $(seq 1 50); do
    grep -q 'listening on' "$SMOKE/scrub-serve.log" && break
    sleep 0.1
done
"$SMOKE/jportal" push -addr 127.0.0.1:7921 -id scrub-smoke "$SMOKE/local" >/dev/null &
SCRUB_PUSH_PID=$!
sleep 0.05
kill -9 "$SCRUB_PUSH_PID" 2>/dev/null || true
wait "$SCRUB_PUSH_PID" 2>/dev/null || true
kill -TERM "$SCRUB_SERVE_PID"
wait "$SCRUB_SERVE_PID"
# Plant a torn tail if the upload was interrupted mid-flight (a push that
# managed to finish leaves a sealed archive, which scrub must leave alone).
if [ -f "$SMOKE/scrub/scrub-smoke/ingest.state" ] && ! grep -q 'sealed: true' "$SMOKE/scrub/scrub-smoke/ingest.state"; then
    printf '\004\000\000\000\000\001' >>"$SMOKE/scrub/scrub-smoke/stream.jpt"
fi
"$SMOKE/jportal" scrub -data "$SMOKE/scrub" -repair >"$SMOKE/scrub-report.txt"
"$SMOKE/jportal" serve -listen 127.0.0.1:7921 -data "$SMOKE/scrub" >"$SMOKE/scrub-serve2.log" 2>&1 &
SCRUB_SERVE_PID=$!
for i in $(seq 1 50); do
    grep -q 'listening on' "$SMOKE/scrub-serve2.log" && break
    sleep 0.1
done
"$SMOKE/jportal" push -addr 127.0.0.1:7921 -id scrub-smoke "$SMOKE/local" >/dev/null
kill -TERM "$SCRUB_SERVE_PID"
wait "$SCRUB_SERVE_PID"
cmp "$SMOKE/local/stream.jpt" "$SMOKE/scrub/scrub-smoke/stream.jpt"
cmp "$SMOKE/local/program.gob" "$SMOKE/scrub/scrub-smoke/program.gob"
"$SMOKE/jportal" scrub -data "$SMOKE/scrub" >/dev/null
echo "    torn upload repaired, resumed push byte-identical, final scrub clean"

echo "==> kill-and-resume smoke (SIGKILL mid-replay, resumed output identical)"
# The golden property (DESIGN.md §11): a replay killed with SIGKILL and
# resumed from its checkpoint prints exactly what an uninterrupted replay
# prints. Completed runs delete session.ckpt, so the cmp holds regardless
# of whether the kill landed mid-run or after completion — the mid-run
# case is pinned deterministically by TestKillAndResumeGoldenAllSubjects.
"$SMOKE/jportal" stream "$SMOKE/local" >"$SMOKE/golden.txt"
"$SMOKE/jportal" stream -ckpt-every 2 "$SMOKE/local" >/dev/null 2>&1 &
STREAM_PID=$!
sleep 0.1
kill -9 "$STREAM_PID" 2>/dev/null || true
wait "$STREAM_PID" 2>/dev/null || true
"$SMOKE/jportal" stream -resume "$SMOKE/local" >"$SMOKE/resumed.txt" 2>"$SMOKE/resume.log"
cmp "$SMOKE/golden.txt" "$SMOKE/resumed.txt"
test ! -e "$SMOKE/local/session.ckpt"
echo "    resumed replay byte-identical, checkpoint cleaned up"

echo "==> checkpoint fuzz corpus (seed corpus replay)"
go test -run 'Fuzz' ./internal/ckpt/

echo "==> benchmark smoke (one iteration)"
go test -bench BenchmarkStreamingMemory -benchtime=1x -run '^$' .

echo "==> bench snapshot smoke (kernels, guard band vs committed BENCH_*.json)"
# Quick mode runs the steady-state kernels with the same inputs as the
# committed snapshot, so allocs/op — the machine-independent metric — is
# directly comparable; -base enforces the 20% guard band against the
# newest committed snapshot, and bench.Load rejects malformed JSON.
BASE=$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)
"$SMOKE/jportal" bench -quick -out "$SMOKE/bench.json" -base "$BASE" -tol 0.2
echo "    bench snapshot well-formed, allocs/op within guard band of $BASE"

echo "ci.sh: all checks passed"
