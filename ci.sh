#!/bin/sh
# ci.sh - the repository's check gauntlet. Run before sending a PR.
#
#   ./ci.sh          vet + build + full tests + race-detector pass over the
#                    concurrent packages (core, trace, conc, pt) and the
#                    root streaming tests + benchmark smoke
#
# The race pass covers the offline-phase parallelism introduced with the
# worker pool — the read-only Matcher contract, the per-core trace carve and
# the pool primitives themselves — plus the streaming pipeline: the chunked
# collector export, the incremental stitcher, and the Session fan-out (the
# full root suite under -race is too slow for CI, so the race pass runs the
# streaming-specific tests).
set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/core/... ./internal/trace/... ./internal/conc/... ./internal/pt/...

echo "==> go test -race (root streaming tests)"
go test -race -run 'TestStream|TestAnalyzeStreamed|TestSession|TestAnalyzeDeterministicAcrossWorkers' .

echo "==> benchmark smoke (one iteration)"
go test -bench BenchmarkStreamingMemory -benchtime=1x -run '^$' .

echo "ci.sh: all checks passed"
