package jportal_test

// End-to-end tests of the sharded ingest fleet (DESIGN.md §14): a
// coordinator consistent-hashes sessions onto registered nodes, clients
// that HELLO the coordinator follow REDIRECTs to their owner, and — the
// core invariant — when a node dies mid-upload the reassigned node
// resumes the session from the shared durable data directory so the
// final archive is byte-identical to an uninterrupted single-node run.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jportal"
	"jportal/internal/bytecode"
	"jportal/internal/fleet"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/meta"
	"jportal/internal/streamfmt"
	"jportal/internal/workload"
)

// collectArchiveSource is collectArchive with an explicit trace-source
// backend (the fleet must resume non-default-source sessions too).
func collectArchiveSource(t *testing.T, subject, dir, srcID string) {
	t.Helper()
	s := workload.MustLoad(subject, 0.3)
	rcfg := collectRcfg()
	rcfg.Source = srcID
	var w *jportal.StreamArchiveWriter
	_, err := jportal.RunWithSink(s.Program, s.Threads, rcfg,
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
			var err error
			w, err = jportal.CreateStreamArchiveSource(dir, p, snap, ncores, srcID)
			return w, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
}

// fleetHarness is one in-process fleet: a coordinator (HTTP control plane
// + ingest handshake listener) over a shared data directory.
type fleetHarness struct {
	t          *testing.T
	c          *fleet.Coordinator
	web        *httptest.Server
	ingestAddr string
	dataDir    string
}

func startFleet(t *testing.T, leaseTTL time.Duration) *fleetHarness {
	t.Helper()
	c := fleet.NewCoordinator(fleet.CoordinatorConfig{LeaseTTL: leaseTTL, Logf: t.Logf})
	t.Cleanup(c.Close)
	web := httptest.NewServer(c.Handler())
	t.Cleanup(web.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.ServeIngest(ln)
	return &fleetHarness{t: t, c: c, web: web, ingestAddr: ln.Addr().String(), dataDir: t.TempDir()}
}

// node is one fleet member: an ingest server over the shared data dir
// plus its membership client.
type node struct {
	srv    *ingest.Server
	member *fleet.Member
	addr   string
}

// addNode starts an ingest server on the shared data dir, joins the
// fleet, and installs the ring as the server's router.
func (h *fleetHarness) addNode(name string) *node {
	h.t.Helper()
	srv, err := ingest.NewServer(ingest.Config{DataDir: h.dataDir})
	if err != nil {
		h.t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.t.Fatal(err)
	}
	go srv.Serve(ln)
	sidecar := httptest.NewServer(srv.Observability())
	h.t.Cleanup(sidecar.Close)
	member, err := fleet.Join(context.Background(), fleet.MemberConfig{
		Name:           name,
		CoordinatorURL: h.web.URL,
		IngestAddr:     ln.Addr().String(),
		MetricsURL:     sidecar.URL + "/metrics",
		Logf:           h.t.Logf,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	n := &node{srv: srv, member: member, addr: ln.Addr().String()}
	h.t.Cleanup(func() {
		member.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return n
}

// kill simulates the node process dying: connections force-closed (the
// already-expired context skips the drain), heartbeats stop, and the
// lease runs out on its own — exactly the externally observable effect
// of a SIGKILL, minus the process boundary (ci.sh covers that).
func (n *node) kill() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n.srv.Shutdown(ctx)
	n.member.Stop()
}

// awaitRoute polls until the coordinator routes id to addr (the fleet
// has noticed a membership change).
func (h *fleetHarness) awaitRoute(id, addr string) {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, got, ok := h.c.Route(id)
		if ok && got == addr {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("coordinator never routed %q to %s (now: %s, %v)", id, addr, got, ok)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fleetChunks batches a stream's records into CHUNK payloads.
func fleetChunks(t *testing.T, stream []byte, maxBytes int) [][]byte {
	t.Helper()
	records := stream[streamfmt.HeaderLen:]
	var out [][]byte
	for off := 0; off < len(records); {
		end := off
		for end < len(records) {
			n, err := streamfmt.Scan(records[end:])
			if err != nil {
				t.Fatal(err)
			}
			if end > off && end+n-off > maxBytes {
				break
			}
			end += n
		}
		out = append(out, records[off:end])
		off = end
	}
	return out
}

// TestFleetNodeLossResume is the fleet's crash-consistency pin: for three
// golden subjects (one collected with the RISC-V E-Trace backend) the
// owning node is killed mid-CHUNK, a replacement takes over its hash
// range, and the client — restarting every reconnect from the
// coordinator — completes the upload on the new owner. The server-side
// archive must come out byte-identical to the local collection, exactly
// as if no node had died.
func TestFleetNodeLossResume(t *testing.T) {
	cases := []struct {
		subject string
		srcID   string
	}{
		{"avrora", ""},
		{"h2", ""},
		{"sunflow", "riscv-etrace"},
	}
	for _, tc := range cases {
		t.Run(tc.subject, func(t *testing.T) {
			localDir := filepath.Join(t.TempDir(), "local")
			if tc.srcID == "" {
				collectArchive(t, tc.subject, localDir)
			} else {
				collectArchiveSource(t, tc.subject, localDir, tc.srcID)
			}
			stream, err := os.ReadFile(filepath.Join(localDir, jportal.StreamFileName))
			if err != nil {
				t.Fatal(err)
			}
			programGob, err := os.ReadFile(filepath.Join(localDir, "program.gob"))
			if err != nil {
				t.Fatal(err)
			}
			ncores, err := streamfmt.ParseHeader(stream)
			if err != nil {
				t.Fatal(err)
			}
			chunks := fleetChunks(t, stream, 4<<10)
			if len(chunks) < 4 {
				t.Fatalf("subject too small to interrupt mid-upload: %d chunks", len(chunks))
			}

			h := startFleet(t, 250*time.Millisecond)
			n1 := h.addNode("n1")
			id := "fleet-" + tc.subject

			p, err := client.Dial(context.Background(), client.Options{
				Addr:        h.ingestAddr, // the coordinator, not a node
				SessionID:   id,
				SourceID:    tc.srcID,
				Backoff:     5 * time.Millisecond,
				MaxBackoff:  100 * time.Millisecond,
				MaxAttempts: 500,
				Logf:        t.Logf,
			}, ncores)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			if _, err := p.Send(ingest.FrameProgram, programGob); err != nil {
				t.Fatal(err)
			}
			half := len(chunks) / 2
			for _, c := range chunks[:half] {
				if _, err := p.Send(ingest.FrameChunk, c); err != nil {
					t.Fatal(err)
				}
			}

			// The owner dies mid-upload; its replacement joins and the
			// lease expiry hands it the session's hash range.
			n1.kill()
			n2 := h.addNode("n2")
			h.awaitRoute(id, n2.addr)

			for _, c := range chunks[half:] {
				if _, err := p.Send(ingest.FrameChunk, c); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Finish(); err != nil {
				t.Fatal(err)
			}

			assertSameArchive(t, localDir, h.dataDir, id)
			if got := n2.srv.Metrics().SessionsRestored.Load(); got != 1 {
				t.Fatalf("replacement node SessionsRestored = %d, want 1", got)
			}
			// At least two REDIRECT hops: the initial route to n1 and the
			// post-loss route to n2.
			if p.Redirects() < 2 {
				t.Fatalf("Redirects = %d, want >= 2", p.Redirects())
			}
		})
	}
}

// TestFleetShardsAndAggregates pushes several sessions through the
// coordinator onto a two-node fleet and checks (a) the sharding actually
// splits sessions across nodes, and (b) `fleet report` aggregation over
// the shared data dir reassembles the single-fleet view: every session
// summarised, coverage and hot methods merged, nothing skipped.
func TestFleetShardsAndAggregates(t *testing.T) {
	localDir := filepath.Join(t.TempDir(), "local")
	collectArchive(t, "fop", localDir)

	h := startFleet(t, time.Minute)
	n1 := h.addNode("n1")
	n2 := h.addNode("n2")

	// Pick session ids that land on both nodes, so the test pins real
	// sharding rather than one node winning every hash.
	byAddr := map[string][]string{}
	for i := 0; len(byAddr[n1.addr]) < 2 || len(byAddr[n2.addr]) < 2; {
		id := fmt.Sprintf("shard-%d", i)
		i++
		_, addr, ok := h.c.Route(id)
		if !ok {
			t.Fatal("fleet refused to route")
		}
		if len(byAddr[addr]) < 2 {
			byAddr[addr] = append(byAddr[addr], id)
		}
	}
	var ids []string
	ids = append(ids, byAddr[n1.addr]...)
	ids = append(ids, byAddr[n2.addr]...)

	for _, id := range ids {
		if _, err := client.PushArchive(context.Background(), client.Options{
			Addr: h.ingestAddr, SessionID: id, MaxChunkBytes: 8 << 10,
		}, localDir); err != nil {
			t.Fatalf("push %s: %v", id, err)
		}
	}
	for _, id := range ids {
		assertSameArchive(t, localDir, h.dataDir, id)
	}
	if a, b := n1.srv.Metrics().SessionsSealed.Load(), n2.srv.Metrics().SessionsSealed.Load(); a != 2 || b != 2 {
		t.Fatalf("sessions split %d/%d across nodes, want 2/2", a, b)
	}

	agg, err := fleet.Aggregate(h.dataDir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Sessions) != len(ids) || len(agg.Skipped) != 0 {
		t.Fatalf("aggregated %d sessions, %d skipped (want %d, 0): %+v",
			len(agg.Sessions), len(agg.Skipped), len(ids), agg.Skipped)
	}
	if agg.Ratio() <= 0 || agg.Steps == 0 || len(agg.HotMethods) == 0 {
		t.Fatalf("empty aggregation: ratio=%v steps=%d hot=%d", agg.Ratio(), agg.Steps, len(agg.HotMethods))
	}
	// All four sessions ran the same subject, so every summary agrees.
	for _, s := range agg.Sessions {
		if s.Steps != agg.Sessions[0].Steps || s.CoveredInstrs != agg.Sessions[0].CoveredInstrs {
			t.Fatalf("session summaries diverge: %+v vs %+v", s, agg.Sessions[0])
		}
	}

	// The coordinator's fleet metrics merge the node sidecars.
	resp, err := http.Get(h.web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	snap := h.c.MetricsSnapshot()
	if snap["fleet_nodes"] != 2 {
		t.Fatalf("fleet_nodes = %d", snap["fleet_nodes"])
	}
	if snap["fleet_sessions_redirected"] != int64(len(ids)) {
		t.Fatalf("fleet_sessions_redirected = %d, want %d", snap["fleet_sessions_redirected"], len(ids))
	}
	if snap["sessions_sealed"] != int64(len(ids)) {
		t.Fatalf("aggregated sessions_sealed = %d, want %d", snap["sessions_sealed"], len(ids))
	}
}
