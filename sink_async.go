package jportal

import (
	"sync/atomic"

	"jportal/internal/meta"
	"jportal/internal/ring"
	"jportal/internal/source"
	"jportal/internal/vm"
)

// AsyncSink decouples the online phase from a slow TraceSink: the
// producer's calls enqueue typed messages on an SPSC ring (DESIGN.md §12)
// and return immediately, while a dedicated writer goroutine drains the
// ring and invokes the wrapped sink in the exact call order. The VM's
// execution loop therefore never blocks on disk (archive writing) unless
// the ring fills — bounded backpressure, not unbounded buffering.
//
// Because messages are applied strictly in enqueue order, the wrapped
// sink observes the same call sequence it would synchronously: the bytes
// an AsyncSink-wrapped StreamArchiveWriter produces are identical for
// every ring size, including capacity 1.
//
// Errors from the wrapped sink are sticky and surface on later Feed/
// Drain calls and on Close; once one occurs, subsequent messages are
// drained and dropped.
type AsyncSink struct {
	sink   TraceSink
	blob   BlobSink
	in     *ring.SPSC[pipeMsg]
	done   chan struct{}
	err    atomic.Value // error; only non-nil values stored
	closed bool
}

// NewAsyncSink wraps sink with a ring of at least ringSize messages
// (0 = core.DefaultRingSize via ring rounding; the capacity rounds up to
// a power of two, minimum 1). If sink also implements BlobSink, blob
// deliveries are forwarded in order too.
func NewAsyncSink(sink TraceSink, ringSize int) *AsyncSink {
	if ringSize <= 0 {
		ringSize = 256
	}
	a := &AsyncSink{sink: sink, in: ring.New[pipeMsg](ringSize), done: make(chan struct{})}
	a.blob, _ = sink.(BlobSink)
	go a.loop()
	return a
}

func (a *AsyncSink) loop() {
	defer close(a.done)
	for {
		m, ok := a.in.Pop(nil)
		if !ok {
			return
		}
		if a.Err() != nil {
			continue // sticky failure: drain the ring without side effects
		}
		var err error
		switch m.kind {
		case pkSideband:
			a.sink.AddSideband(m.recs)
		case pkWatermark:
			a.sink.Watermark(m.core, m.mark)
		case pkChunk:
			err = a.sink.Feed(m.core, m.items)
		case pkBlobs:
			if a.blob != nil {
				err = a.blob.AddBlobs(m.blobs)
			}
		case pkDrain:
			err = a.sink.Drain()
		}
		if err != nil {
			a.err.Store(err)
		}
	}
}

// Err returns the wrapped sink's first error, if any has surfaced yet.
func (a *AsyncSink) Err() error {
	if v := a.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// AddSideband enqueues scheduler switch records (TraceSink). The records
// are copied, so the caller's slice may keep growing.
func (a *AsyncSink) AddSideband(recs []vm.SwitchRecord) {
	if len(recs) == 0 || a.closed {
		return
	}
	a.in.Push(pipeMsg{kind: pkSideband, recs: append([]vm.SwitchRecord(nil), recs...)}, nil)
}

// Watermark enqueues a watermark (TraceSink).
func (a *AsyncSink) Watermark(core int, w uint64) {
	if a.closed {
		return
	}
	a.in.Push(pipeMsg{kind: pkWatermark, core: core, mark: w}, nil)
}

// Feed enqueues one trace chunk (TraceSink). The collector allocates
// chunk slices fresh per delivery, so ownership transfers without a copy.
func (a *AsyncSink) Feed(core int, items []source.Item) error {
	if a.closed {
		return a.Err()
	}
	a.in.Push(pipeMsg{kind: pkChunk, core: core, items: items}, nil)
	return a.Err()
}

// AddBlobs enqueues compiled-method metadata (BlobSink).
func (a *AsyncSink) AddBlobs(blobs []*meta.CompiledMethod) error {
	if len(blobs) == 0 || a.closed {
		return a.Err()
	}
	a.in.Push(pipeMsg{kind: pkBlobs, blobs: append([]*meta.CompiledMethod(nil), blobs...)}, nil)
	return a.Err()
}

// Drain enqueues a drain of the wrapped sink (TraceSink). Asynchronous:
// an error from the wrapped sink surfaces on a later call or at Close.
func (a *AsyncSink) Drain() error {
	if a.closed {
		return a.Err()
	}
	a.in.Push(pipeMsg{kind: pkDrain}, nil)
	return a.Err()
}

// Close waits for every enqueued message to reach the wrapped sink, stops
// the writer goroutine, and returns the sticky error. It does not close
// the wrapped sink (a StreamArchiveWriter still wants Seal afterwards).
// Idempotent.
func (a *AsyncSink) Close() error {
	if !a.closed {
		a.closed = true
		a.in.Close()
		<-a.done
	}
	return a.Err()
}
