package jportal

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/vm"
	"jportal/internal/workload"
)

// equalAnalyses asserts byte-identical reconstructions: steps, hole fills,
// segment flows and decode statistics per thread (times are wall-clock and
// excluded).
func equalAnalyses(t *testing.T, label string, want, got *Analysis) {
	t.Helper()
	if len(want.Threads) != len(got.Threads) {
		t.Fatalf("%s: thread count %d vs %d", label, len(want.Threads), len(got.Threads))
	}
	for i := range want.Threads {
		a, b := want.Threads[i], got.Threads[i]
		if a.Thread != b.Thread {
			t.Fatalf("%s: thread order diverged at %d (%d vs %d)", label, i, a.Thread, b.Thread)
		}
		if !reflect.DeepEqual(a.Steps, b.Steps) {
			t.Errorf("%s: thread %d steps diverge (%d vs %d)", label, a.Thread, len(a.Steps), len(b.Steps))
		}
		if !reflect.DeepEqual(a.Fills, b.Fills) {
			t.Errorf("%s: thread %d fills diverge", label, a.Thread)
		}
		if len(a.Flows) != len(b.Flows) {
			t.Errorf("%s: thread %d flow count %d vs %d", label, a.Thread, len(a.Flows), len(b.Flows))
		} else {
			for j := range a.Flows {
				if !reflect.DeepEqual(a.Flows[j].Nodes, b.Flows[j].Nodes) ||
					a.Flows[j].Skipped != b.Flows[j].Skipped {
					t.Errorf("%s: thread %d flow %d diverges", label, a.Thread, j)
					break
				}
			}
		}
		if a.Decode != b.Decode {
			t.Errorf("%s: thread %d decode stats diverge (%+v vs %+v)", label, a.Thread, a.Decode, b.Decode)
		}
		if a.RecoveredSteps != b.RecoveredSteps || a.DecodedSteps != b.DecodedSteps {
			t.Errorf("%s: thread %d step counts diverge", label, a.Thread)
		}
	}
}

// sessionAnalyze replays a finished run through a Session incrementally:
// sideband first, watermarks to infinity, then round-robin chunks of the
// per-core traces with a Drain after every round.
func sessionAnalyze(t *testing.T, s *workload.Subject, run *RunResult, cfg core.PipelineConfig, chunk int) *Analysis {
	t.Helper()
	ncores := 1
	for i := range run.Traces {
		if n := run.Traces[i].Core + 1; n > ncores {
			ncores = n
		}
	}
	sess, err := OpenSession(s.Program, run.Snapshot, ncores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.AddSideband(run.Sideband)
	for c := 0; c < ncores; c++ {
		sess.Watermark(c, math.MaxUint64)
	}
	offs := make([]int, len(run.Traces))
	for {
		progress := false
		for i := range run.Traces {
			items := run.Traces[i].Items
			if offs[i] >= len(items) {
				continue
			}
			end := offs[i] + chunk
			if end > len(items) {
				end = len(items)
			}
			if err := sess.Feed(run.Traces[i].Core, items[offs[i]:end]); err != nil {
				t.Fatal(err)
			}
			offs[i] = end
			progress = true
		}
		if !progress {
			break
		}
		if err := sess.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	an, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Everything was final under the infinite watermarks, so the stitcher
	// should have emitted incrementally rather than hoarding until Close.
	total := 0
	for i := range run.Traces {
		total += len(run.Traces[i].Items)
	}
	if chunk < total/4 && total > 1000 && sess.PeakBufferedItems() >= total {
		t.Errorf("chunk %d: peak buffered %d items, never emitted before Close (total %d)",
			chunk, sess.PeakBufferedItems(), total)
	}
	return an
}

// TestStreamingMatchesBatchAllSubjects is the golden equivalence check of
// the streaming refactor: for every benchmark subject, the incremental
// Session must reproduce the batch Analyze byte-for-byte at several chunk
// sizes, worker counts and reconstruction-wave caps. The buffer is small
// enough that runs lose data, so the §5 recovery path is covered too.
func TestStreamingMatchesBatchAllSubjects(t *testing.T) {
	variants := []struct {
		name    string
		chunk   int
		workers int
		pending int
	}{
		{"chunk7-serial", 7, 1, 0},
		{"chunk256-parallel", 256, 3, 0},
		{"chunk64-waves", 64, 3, 4},
		{"chunk1M-serial", 1 << 20, 1, 0},
	}
	for _, name := range workload.Names() {
		s := workload.MustLoad(name, 0.25)
		rcfg := DefaultRunConfig()
		rcfg.CollectOracle = false
		rcfg.PT.BufBytes = 16 << 10
		run, err := Run(s.Program, s.Threads, rcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		batch, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, v := range variants {
			cfg := core.DefaultPipelineConfig()
			cfg.Workers = v.workers
			cfg.MaxPendingSegments = v.pending
			got := sessionAnalyze(t, s, run, cfg, v.chunk)
			equalAnalyses(t, name+"/"+v.name, batch, got)
		}
	}
}

// TestAnalyzeStreamedMatchesBatch checks the fully live path: collector →
// sink → Session with real (finite) watermarks, decoding against the
// growing snapshot, must equal a separate batch run (VM runs are
// deterministic).
func TestAnalyzeStreamedMatchesBatch(t *testing.T) {
	s := workload.MustLoad("h2", 0.5)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 128

	run, err := Run(s.Program, s.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}

	s2 := workload.MustLoad("h2", 0.5)
	_, streamed, err := AnalyzeStreamed(s2.Program, s2.Threads, rcfg, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	equalAnalyses(t, "live", batch, streamed)
}

// TestStreamArchiveRoundTrip collects a run into a chunked archive and
// checks that both consumers agree with each other and with a live batch
// run: AnalyzeStreamArchive (incremental replay) and LoadRun+Analyze (the
// batch materialisation of the same records).
func TestStreamArchiveRoundTrip(t *testing.T) {
	s := workload.MustLoad("fop", 0.3)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 64

	dir := filepath.Join(t.TempDir(), "chunked")
	var w *StreamArchiveWriter
	_, err := RunWithSink(s.Program, s.Threads, rcfg,
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error) {
			var err error
			w, err = CreateStreamArchive(dir, p, snap, ncores)
			return w, err
		})
	if err != nil {
		t.Fatal(err)
	}

	// Unsealed: one-shot readers must refuse with a clear error.
	if _, _, err := AnalyzeStreamArchive(dir, core.DefaultPipelineConfig(), false, 0); err == nil {
		t.Fatal("analyzed an unsealed archive without follow")
	}
	if _, _, err := LoadRun(dir); err == nil {
		t.Fatal("batch-loaded an unsealed archive")
	}

	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}

	prog2, run2, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	fromBatch, err := Analyze(prog2, run2, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, fromStream, err := AnalyzeStreamArchive(dir, core.DefaultPipelineConfig(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	equalAnalyses(t, "archive stream vs archive batch", fromBatch, fromStream)

	// And both equal a live batch run of the same subject (determinism).
	s2 := workload.MustLoad("fop", 0.3)
	run3, err := Run(s2.Program, s2.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	live, err := Analyze(s2.Program, run3, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	equalAnalyses(t, "archive vs live", live, fromStream)
}

// TestStreamArchiveFollow tails an archive whose seal arrives only after
// the follower has caught up with the flushed records.
func TestStreamArchiveFollow(t *testing.T) {
	s := workload.MustLoad("luindex", 0.25)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.SinkChunkItems = 64

	dir := filepath.Join(t.TempDir(), "chunked")
	var w *StreamArchiveWriter
	if _, err := RunWithSink(s.Program, s.Threads, rcfg,
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error) {
			var err error
			w, err = CreateStreamArchive(dir, p, snap, ncores)
			return w, err
		}); err != nil {
		t.Fatal(err)
	}

	type result struct {
		an  *Analysis
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, an, err := AnalyzeStreamArchive(dir, core.DefaultPipelineConfig(), true, time.Millisecond)
		done <- result{an, err}
	}()
	// Let the follower reach the pending tail, then complete the archive.
	time.Sleep(20 * time.Millisecond)
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}

	prog2, run2, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Analyze(prog2, run2, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	equalAnalyses(t, "follow", batch, r.an)
}

// TestArchiveVersioning covers the header satellite: legacy (headerless)
// archives still load, future versions and non-archives fail with clear
// errors, and trace files sort numerically by core.
func TestArchiveVersioning(t *testing.T) {
	s := workload.MustLoad("fop", 0.2)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	run, err := Run(s.Program, s.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "arch")
	if err := SaveRun(dir, s.Program, run); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRun(dir); err != nil {
		t.Fatalf("versioned archive: %v", err)
	}

	// Legacy: archives written before the header existed load as v1 batch.
	if err := os.Remove(filepath.Join(dir, archiveMetaFile)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRun(dir); err != nil {
		t.Fatalf("legacy archive: %v", err)
	}

	// Future version: refuse with a version message, not a decode error.
	if err := os.WriteFile(filepath.Join(dir, archiveMetaFile),
		[]byte(archiveMagicLine+"\nversion: 99\nlayout: batch\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRun(dir); err == nil {
		t.Fatal("loaded a future-version archive")
	}

	// Unknown layout.
	if err := os.WriteFile(filepath.Join(dir, archiveMetaFile),
		[]byte(archiveMagicLine+"\nversion: 2\nlayout: exotic\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRun(dir); err == nil {
		t.Fatal("loaded an unknown-layout archive")
	}

	// Not an archive at all: empty directory.
	if _, _, err := LoadRun(t.TempDir()); err == nil {
		t.Fatal("loaded an empty directory as an archive")
	}

	// Malformed header.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, archiveMetaFile), []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRun(bad); err == nil {
		t.Fatal("loaded a malformed header")
	}
}

// TestLoadRunSortsCoresNumerically guards the lexical-glob bug: trace.core10
// sorted before trace.core2 would violate Analyze's ascending-core check.
func TestLoadRunSortsCoresNumerically(t *testing.T) {
	s := workload.MustLoad("fop", 0.15)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.VM.Cores = 12
	run, err := Run(s.Program, s.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Traces) < 11 {
		t.Fatalf("expected 12 core traces, got %d", len(run.Traces))
	}
	dir := filepath.Join(t.TempDir(), "arch")
	if err := SaveRun(dir, s.Program, run); err != nil {
		t.Fatal(err)
	}
	_, run2, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range run2.Traces {
		if run2.Traces[i].Core != i {
			t.Fatalf("trace %d has core %d: not sorted numerically", i, run2.Traces[i].Core)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	s := workload.MustLoad("fop", 0.1)
	snap := meta.NewSnapshot(meta.NewTemplateTable())
	if _, err := OpenSession(s.Program, nil, 1, core.DefaultPipelineConfig()); err == nil {
		t.Error("opened a session without a snapshot")
	}
	if _, err := OpenSession(s.Program, snap, 0, core.DefaultPipelineConfig()); err == nil {
		t.Error("opened a session with zero cores")
	}
	bad := core.DefaultPipelineConfig()
	bad.Workers = -1
	if _, err := OpenSession(s.Program, snap, 1, bad); err == nil {
		t.Error("opened a session with an invalid pipeline config")
	}

	sess, err := OpenSession(s.Program, snap, 2, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Feed(5, nil); err == nil {
		t.Error("fed an out-of-range core")
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Feed(0, []pt.Item{{}}); err == nil {
		t.Error("fed a closed session")
	}
	if err := sess.Drain(); err == nil {
		t.Error("drained a closed session")
	}

	rcfg := DefaultRunConfig()
	rcfg.VM.Cores = 0
	if _, err := Run(s.Program, s.Threads, rcfg); err == nil {
		t.Error("ran with zero cores")
	}
	rcfg = DefaultRunConfig()
	rcfg.SinkChunkItems = -1
	if _, err := Run(s.Program, s.Threads, rcfg); err == nil {
		t.Error("ran with a negative sink chunk size")
	}
	rcfg = DefaultRunConfig()
	rcfg.DisableTracing = true
	if _, err := RunWithSink(s.Program, s.Threads, rcfg,
		func(*bytecode.Program, *meta.Snapshot, int) (TraceSink, error) { return nil, nil }); err == nil {
		t.Error("RunWithSink accepted disabled tracing")
	}
}

func TestErrStreamPendingIsSentinel(t *testing.T) {
	if !errors.Is(ErrStreamPending, ErrStreamPending) {
		t.Fatal("sentinel mismatch")
	}
	_ = vm.SwitchRecord{}
}

// BenchmarkStreamingMemory reports the streaming pipeline's peak in-flight
// trace buffering against the total trace volume a batch analysis would
// hold at once. Run with -benchtime=1x for a smoke reading.
func BenchmarkStreamingMemory(b *testing.B) {
	s := workload.MustLoad("h2", 0.5)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 128
	pcfg := core.DefaultPipelineConfig()
	pcfg.MaxPendingSegments = 8

	var peak, total float64
	for i := 0; i < b.N; i++ {
		var sess *Session
		var fed int
		_, err := RunWithSink(s.Program, s.Threads, rcfg,
			func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error) {
				var err error
				sess, err = OpenSession(p, snap, ncores, pcfg)
				if err != nil {
					return nil, err
				}
				return countingSink{sess, &fed}, nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Close(); err != nil {
			b.Fatal(err)
		}
		peak = float64(sess.PeakBufferedItems())
		total = float64(fed)
	}
	b.ReportMetric(peak, "peak-items")
	b.ReportMetric(total, "total-items")
	if total > 0 {
		b.ReportMetric(peak/total, "peak/total")
	}
}

// countingSink forwards to a Session while tallying fed items (benchmark
// instrumentation).
type countingSink struct {
	s   *Session
	fed *int
}

func (c countingSink) AddSideband(recs []vm.SwitchRecord) { c.s.AddSideband(recs) }
func (c countingSink) Watermark(core int, w uint64)       { c.s.Watermark(core, w) }
func (c countingSink) Feed(core int, items []pt.Item) error {
	*c.fed += len(items)
	return c.s.Feed(core, items)
}
func (c countingSink) Drain() error { return c.s.Drain() }
