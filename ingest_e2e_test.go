package jportal_test

// End-to-end tests of the networked ingest path against real workload
// runs: a chunked archive collected locally, pushed over loopback TCP,
// must land on the server byte-identical — under clean conditions,
// injected disconnects, concurrent sessions, and when streamed live by a
// running collector instead of replayed from disk.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jportal"
	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/meta"
	"jportal/internal/workload"
)

// collectRcfg is the shared run configuration: small buffer so runs lose
// data (covering the recovery path), no oracle, chunked export.
func collectRcfg() jportal.RunConfig {
	rcfg := jportal.DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 64
	return rcfg
}

// collectArchive runs the subject and seals a chunked archive at dir.
func collectArchive(t *testing.T, subject string, dir string) {
	t.Helper()
	s := workload.MustLoad(subject, 0.3)
	var w *jportal.StreamArchiveWriter
	_, err := jportal.RunWithSink(s.Program, s.Threads, collectRcfg(),
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
			var err error
			w, err = jportal.CreateStreamArchive(dir, p, snap, ncores)
			return w, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
}

func startIngestServer(t *testing.T, cfg ingest.Config) (*ingest.Server, string) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv, ln.Addr().String()
}

// assertSameArchive compares the server-side session archive with the
// locally collected one, byte for byte, and proves the copy is analyzable.
func assertSameArchive(t *testing.T, localDir, dataDir, id string) {
	t.Helper()
	serverDir := filepath.Join(dataDir, id)
	for _, name := range []string{jportal.StreamFileName, "program.gob"} {
		want, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(serverDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s diverges: server %d bytes, local %d bytes", name, len(got), len(want))
		}
	}
	if _, _, err := jportal.AnalyzeStreamArchive(serverDir, core.DefaultPipelineConfig(), false, 0); err != nil {
		t.Fatalf("server-side archive not analyzable: %v", err)
	}
}

func TestIngestPushEndToEnd(t *testing.T) {
	localDir := filepath.Join(t.TempDir(), "local")
	collectArchive(t, "fop", localDir)
	dataDir := t.TempDir()
	srv, addr := startIngestServer(t, ingest.Config{DataDir: dataDir})

	st, err := client.PushArchive(context.Background(),
		client.Options{Addr: addr, SessionID: "fop-agent"}, localDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames < 2 || st.Bytes == 0 {
		t.Fatalf("push stats: %+v", st)
	}
	assertSameArchive(t, localDir, dataDir, "fop-agent")
	if srv.Metrics().SessionsSealed.Load() != 1 {
		t.Fatalf("SessionsSealed = %d", srv.Metrics().SessionsSealed.Load())
	}

	// A second push of the same archive is a pure resume: nothing
	// retransmits, the archive stays intact.
	st2, err := client.PushArchive(context.Background(),
		client.Options{Addr: addr, SessionID: "fop-agent"}, localDir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ResumeSeq == 0 {
		t.Fatal("re-push did not resume")
	}
	assertSameArchive(t, localDir, dataDir, "fop-agent")
}

func TestIngestPushRefusesUnsealedArchive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "unsealed")
	s := workload.MustLoad("fop", 0.3)
	_, err := jportal.RunWithSink(s.Program, s.Threads, collectRcfg(),
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
			return jportal.CreateStreamArchive(dir, p, snap, ncores)
		})
	if err != nil {
		t.Fatal(err)
	}
	// No Seal: pushing must fail client-side before touching the network.
	if _, err := client.PushArchive(context.Background(),
		client.Options{Addr: "127.0.0.1:1", SessionID: "x"}, dir); err == nil {
		t.Fatal("pushed an unsealed archive")
	}
}

// cutConn fails writes after a byte budget, closing the connection
// mid-frame like a network partition.
type cutConn struct {
	net.Conn
	remaining int
}

func (c *cutConn) Write(b []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, errors.New("injected connection failure")
	}
	if len(b) > c.remaining {
		n, _ := c.Conn.Write(b[:c.remaining])
		c.remaining = 0
		c.Conn.Close()
		return n, errors.New("injected connection failure")
	}
	c.remaining -= len(b)
	return c.Conn.Write(b)
}

func TestIngestPushSurvivesDisconnects(t *testing.T) {
	localDir := filepath.Join(t.TempDir(), "local")
	collectArchive(t, "fop", localDir)
	dataDir := t.TempDir()
	_, addr := startIngestServer(t, ingest.Config{DataDir: dataDir})

	// The first three connections each die after a few KB.
	var dials atomic.Int32
	opts := client.Options{
		Addr: addr, SessionID: "flaky", MaxChunkBytes: 4 << 10,
		Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		Dial: func(ctx context.Context, a string) (net.Conn, error) {
			var d net.Dialer
			c, err := d.DialContext(ctx, "tcp", a)
			if err != nil {
				return nil, err
			}
			if n := dials.Add(1); n <= 3 {
				return &cutConn{Conn: c, remaining: 8 << 10}, nil
			}
			return c, nil
		},
	}
	st, err := client.PushArchive(context.Background(), opts, localDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reconnects == 0 {
		t.Fatal("no reconnects despite injected failures")
	}
	assertSameArchive(t, localDir, dataDir, "flaky")
}

func TestIngestConcurrentPushes(t *testing.T) {
	localDir := filepath.Join(t.TempDir(), "local")
	collectArchive(t, "fop", localDir)
	dataDir := t.TempDir()
	srv, addr := startIngestServer(t, ingest.Config{DataDir: dataDir})

	const sessions = 4
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.PushArchive(context.Background(), client.Options{
				Addr: addr, SessionID: fmt.Sprintf("agent-%d", i), MaxChunkBytes: 8 << 10,
			}, localDir)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for i := 0; i < sessions; i++ {
		assertSameArchive(t, localDir, dataDir, fmt.Sprintf("agent-%d", i))
	}
	if got := srv.Metrics().SessionsSealed.Load(); got != sessions {
		t.Fatalf("SessionsSealed = %d, want %d", got, sessions)
	}
}

// TestIngestLivePushMatchesLocalArchive runs the same deterministic
// subject twice — once into a local chunked archive, once streamed live to
// an ingest server through RunWithSink — and requires the two archives to
// be byte-identical: the live sink frames records with the same encoder as
// the local writer.
func TestIngestLivePushMatchesLocalArchive(t *testing.T) {
	localDir := filepath.Join(t.TempDir(), "local")
	collectArchive(t, "fop", localDir)
	dataDir := t.TempDir()
	_, addr := startIngestServer(t, ingest.Config{DataDir: dataDir})

	s := workload.MustLoad("fop", 0.3)
	var sink *client.LiveSink
	_, err := jportal.RunWithSink(s.Program, s.Threads, collectRcfg(),
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
			var err error
			sink, err = client.NewLiveSink(context.Background(),
				client.Options{Addr: addr, SessionID: "live"}, p, snap, ncores)
			return sink, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Seal(); err != nil {
		t.Fatal(err)
	}
	assertSameArchive(t, localDir, dataDir, "live")
}
