package jportal_test

import (
	"reflect"
	"testing"

	"jportal"
	"jportal/internal/core"
	"jportal/internal/workload"
)

// TestAnalyzeDeterministicAcrossWorkers is the end-to-end determinism
// check for the parallel offline pipeline: analysing the same run with 1
// and with 8 workers must produce byte-identical per-thread results —
// steps, segment flows, hole fills and decode statistics. The buffer is
// shrunk so the run actually loses data and the concurrent hole-recovery
// fan-out is exercised, and h2 runs 4 threads so the thread-level fan-out
// is too.
func TestAnalyzeDeterministicAcrossWorkers(t *testing.T) {
	s := workload.MustLoad("h2", 0.5)
	rcfg := jportal.DefaultRunConfig()
	// Paper-label 64MB at the simulation's buffer scale (see
	// experiments.BufScaleShift): small enough to overflow, producing
	// holes that exercise the concurrent recovery fan-out.
	rcfg.PT.BufBytes = 16 << 10
	run, err := jportal.Run(s.Program, s.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}

	analyze := func(workers int) *jportal.Analysis {
		cfg := core.DefaultPipelineConfig()
		cfg.Workers = workers
		an, err := jportal.Analyze(s.Program, run, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return an
	}
	serial := analyze(1)
	parallel := analyze(8)

	if len(serial.Threads) != len(parallel.Threads) {
		t.Fatalf("thread count: %d vs %d", len(serial.Threads), len(parallel.Threads))
	}
	var recovered int
	for i := range serial.Threads {
		a, b := serial.Threads[i], parallel.Threads[i]
		if a.Thread != b.Thread {
			t.Fatalf("thread %d: order diverged (%d vs %d)", i, a.Thread, b.Thread)
		}
		if !reflect.DeepEqual(a.Steps, b.Steps) {
			t.Errorf("thread %d: steps diverge (%d vs %d)", a.Thread, len(a.Steps), len(b.Steps))
		}
		if !reflect.DeepEqual(a.Fills, b.Fills) {
			t.Errorf("thread %d: fills diverge", a.Thread)
		}
		if len(a.Flows) != len(b.Flows) {
			t.Errorf("thread %d: flow count %d vs %d", a.Thread, len(a.Flows), len(b.Flows))
		} else {
			for j := range a.Flows {
				if !reflect.DeepEqual(a.Flows[j].Nodes, b.Flows[j].Nodes) ||
					a.Flows[j].Skipped != b.Flows[j].Skipped {
					t.Errorf("thread %d flow %d: diverges", a.Thread, j)
					break
				}
			}
		}
		if a.Decode != b.Decode {
			t.Errorf("thread %d: decode stats diverge (%+v vs %+v)", a.Thread, a.Decode, b.Decode)
		}
		if a.RecoveredSteps != b.RecoveredSteps || a.DecodedSteps != b.DecodedSteps {
			t.Errorf("thread %d: step counts diverge", a.Thread)
		}
		recovered += a.RecoveredSteps
	}
	if recovered == 0 {
		t.Error("no recovered steps: fixture did not exercise hole recovery")
	}
	if !reflect.DeepEqual(serial.Steps(), parallel.Steps()) {
		t.Error("merged Steps() diverge")
	}
}
