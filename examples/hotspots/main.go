// Hotspots: the paper's introduction notes that "hardware traces contain
// event timestamps, enabling performance analysis such as detection of
// invocation hot spots". This example reconstructs a workload's control
// flow and attributes *time* (not just instruction counts) to methods from
// the trace's embedded timestamps, then contrasts the two rankings.
//
//	go run ./examples/hotspots
package main

import (
	"fmt"
	"log"

	"jportal"
	"jportal/internal/core"
	"jportal/internal/profile"
	"jportal/internal/workload"
)

func main() {
	subject := workload.MustLoad("batik", 1.0)
	prog := subject.Program

	run, err := jportal.Run(prog, subject.Threads, jportal.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	an, err := jportal.Analyze(prog, run, core.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	steps := an.Steps()

	byCount := profile.HotMethods(prog, steps, 8)
	timeProf := profile.ComputeTimeProfile(prog, steps, 20_000)
	byTime := timeProf.Top(8)

	fmt.Printf("subject: %s — hot spots from reconstructed flow (%d steps)\n\n",
		subject.Name, len(steps))
	fmt.Printf("%-4s %-22s %-22s\n", "#", "by instructions", "by attributed time")
	for i := 0; i < 8; i++ {
		a, b := "-", "-"
		if i < len(byCount) {
			a = prog.Methods[byCount[i]].FullName()
		}
		if i < len(byTime) {
			b = fmt.Sprintf("%s (%.1f%%)",
				prog.Methods[byTime[i]].FullName(),
				100*float64(timeProf.Cycles[byTime[i]])/float64(timeProf.Total))
		}
		fmt.Printf("%-4d %-22s %-22s\n", i+1, a, b)
	}

	// Ground truth (simulation affordance): how close is the time ranking
	// to the VM's own exclusive-cycles accounting?
	fmt.Printf("\nattributed %d of %d simulated cycles\n",
		timeProf.Total, run.Stats.Cycles)
}
