// Coverage: use JPortal's reconstructed control flow as a zero-
// instrumentation statement-coverage tool, and compare its cost against the
// Ball-Larus instrumentation-based coverage baseline (the paper's SC
// comparator).
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"

	"jportal"
	"jportal/internal/baselines"
	"jportal/internal/core"
	"jportal/internal/profile"
	"jportal/internal/vm"
	"jportal/internal/workload"
)

func main() {
	subject := workload.MustLoad("pmd", 0.5)

	// Plain run: the cost baseline.
	plain := vm.New(subject.Program, vm.DefaultConfig())
	plainStats, err := plain.Run(subject.Threads)
	if err != nil {
		log.Fatal(err)
	}

	// JPortal: trace with PT, reconstruct, derive coverage offline.
	run, err := jportal.Run(subject.Program, subject.Threads, jportal.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	an, err := jportal.Analyze(subject.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	cov := profile.ComputeCoverage(subject.Program, an.Steps())

	// Instrumentation baseline: rewrite the bytecode with probes.
	instrumented, prof, err := baselines.InstrumentCoverage(subject.Program)
	if err != nil {
		log.Fatal(err)
	}
	im := vm.New(instrumented, vm.DefaultConfig())
	im.Probe = prof.Registry.Handle
	im.ProbeActionCost = baselines.CoverageProbeCost
	instrStats, err := im.Run(subject.Threads)
	if err != nil {
		log.Fatal(err)
	}
	covBlocks, totBlocks := prof.CoveredBlocks()

	fmt.Printf("subject: %s (%d methods)\n", subject.Name, len(subject.Program.Methods))
	fmt.Printf("JPortal coverage:        %.1f%% of instructions, %d/%d methods\n",
		cov.Ratio()*100, cov.CoveredMethods, len(subject.Program.Methods))
	fmt.Printf("instrumented coverage:   %d/%d basic blocks\n", covBlocks, totBlocks)
	fmt.Printf("JPortal overhead:        %.2fx\n",
		float64(run.Stats.ActiveCycles)/float64(plainStats.ActiveCycles))
	fmt.Printf("instrumentation overhead: %.2fx\n",
		float64(instrStats.ActiveCycles)/float64(plainStats.ActiveCycles))
}
