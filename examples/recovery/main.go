// Recovery: demonstrate the paper's §5 machinery. The subject runs with a
// deliberately tiny trace buffer so the PT exporter falls behind and whole
// spans of the trace are lost; JPortal recovers the holes from complete
// segments with matching contexts, and this example measures how much of
// the lost execution comes back.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"jportal"
	"jportal/internal/core"
	"jportal/internal/metrics"
	"jportal/internal/workload"
)

func main() {
	subject := workload.MustLoad("batik", 1.0)

	cfg := jportal.DefaultRunConfig()
	cfg.PT.BufBytes = 16 << 10 // the paper's "64MB" point, scaled
	run, err := jportal.Run(subject.Program, subject.Threads, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var exported, lost uint64
	for _, tr := range run.Traces {
		exported += tr.Bytes()
		lost += tr.LostBytes()
	}
	fmt.Printf("trace: %d KB exported, %d KB lost (%.1f%%)\n",
		exported/1024, lost/1024, 100*float64(lost)/float64(exported+lost))

	// Analyze twice: with recovery on (default) and off (ablation).
	withRec, err := jportal.Analyze(subject.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	noRecCfg := core.DefaultPipelineConfig()
	noRecCfg.Recovery.Disable = true
	withoutRec, err := jportal.Analyze(subject.Program, run, noRecCfg)
	if err != nil {
		log.Fatal(err)
	}

	truth := run.Oracle.Keys(0)
	score := func(an *jportal.Analysis) float64 {
		var got []metrics.Key
		for _, s := range an.Threads[0].Steps {
			got = append(got, metrics.StepKey(int32(s.Method), s.PC))
		}
		return metrics.Similarity(got, truth, 4096)
	}

	th := withRec.Threads[0]
	fmt.Printf("segments: %d (each boundary is a data-loss hole)\n", th.Decode.Segments)
	for i, f := range th.Fills {
		if f.Method == core.FillNone {
			continue
		}
		how := map[core.FillMethod]string{
			core.FillCS:      "complete-segment splice",
			core.FillPartial: "partial splice",
			core.FillWalk:    "ICFG walk",
		}[f.Method]
		fmt.Printf("  hole %d: filled %d steps via %s (%d candidates examined)\n",
			i, len(f.Steps), how, f.CandidatesTried)
	}
	fmt.Printf("accuracy with recovery:    %.1f%%\n", score(withRec)*100)
	fmt.Printf("accuracy without recovery: %.1f%%\n", score(withoutRec)*100)
}
