// Hotmethods: the paper's Table 4 scenario on one subject — find the ten
// hottest methods with JPortal's hardware-trace profile and with two
// sampling profilers, and score each against ground truth.
//
//	go run ./examples/hotmethods
package main

import (
	"fmt"
	"log"
	"sort"

	"jportal"
	"jportal/internal/baselines"
	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/metrics"
	"jportal/internal/profile"
	"jportal/internal/vm"
	"jportal/internal/workload"
)

func main() {
	subject := workload.MustLoad("jython", 1.0)
	prog := subject.Program
	const topN = 10

	// Ground truth: the oracle sees every executed instruction.
	truthVM := vm.New(prog, vm.DefaultConfig())
	oracle := jportal.NewOracle(len(subject.Threads))
	truthVM.Listener = oracle
	if _, err := truthVM.Run(subject.Threads); err != nil {
		log.Fatal(err)
	}
	truth := rank(oracle.MethodCounts(len(prog.Methods)), topN)

	// xprof-style timer sampling.
	xp := baselines.NewXprof(120_000)
	xpVM := vm.New(prog, vm.DefaultConfig())
	xpVM.Sampler = xp
	if _, err := xpVM.Run(subject.Threads); err != nil {
		log.Fatal(err)
	}

	// JProfiler-style safepoint-biased sampling.
	jp := baselines.NewJProfiler(120_000)
	jpVM := vm.New(prog, vm.DefaultConfig())
	jpVM.Sampler = jp
	if _, err := jpVM.Run(subject.Threads); err != nil {
		log.Fatal(err)
	}

	// JPortal: reconstruct the full control flow and count instructions.
	run, err := jportal.Run(prog, subject.Threads, jportal.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	an, err := jportal.Analyze(prog, run, core.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	hot := profile.HotMethods(prog, an.Steps(), topN)

	fmt.Printf("subject: %s — top-%d hot methods vs ground truth\n\n", subject.Name, topN)
	fmt.Printf("%-4s %-14s %-14s %-14s\n", "#", "truth", "JPortal", "xprof")
	xpTop := xp.Top(topN)
	for i := 0; i < topN && i < len(truth); i++ {
		fmt.Printf("%-4d %-14s %-14s %-14s\n", i+1,
			name(prog, truth, i), name(prog, hot, i), name(prog, xpTop, i))
	}
	fmt.Printf("\ntop-%d intersection with truth: JPortal=%d xprof=%d JProfiler=%d\n",
		topN,
		metrics.TopNIntersection(truth, hot, topN),
		metrics.TopNIntersection(truth, xpTop, topN),
		metrics.TopNIntersection(truth, jp.Top(topN), topN))
}

// rank returns the indices of the topN largest counts, descending.
func rank(counts []int64, topN int) []int32 {
	idx := make([]int32, len(counts))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
	out := make([]int32, 0, topN)
	for _, i := range idx {
		if counts[i] == 0 || len(out) == topN {
			break
		}
		out = append(out, i)
	}
	return out
}

func name(p *bytecode.Program, ranking []int32, i int) string {
	if i >= len(ranking) {
		return "-"
	}
	return p.Methods[ranking[i]].Name
}
