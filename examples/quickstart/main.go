// Quickstart: trace a small program with (simulated) Intel PT and
// reconstruct its bytecode-level control flow — the paper's Figure 2
// example, end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jportal"
	"jportal/internal/bytecode"
	"jportal/internal/core"
)

// The program of the paper's Figure 2(a), plus a driver loop that makes it
// hot enough to get JIT compiled.
const src = `
method Test.fun(2) returns int {
    iload 0
    ifeq Lelse
    iload 1
    iconst 1
    iadd
    istore 1
    goto Ljoin
Lelse:
    iload 1
    iconst 2
    isub
    istore 1
Ljoin:
    iload 1
    iconst 2
    irem
    ifne Lfalse
    iconst 1
    ireturn
Lfalse:
    iconst 0
    ireturn
}

method Test.main(0) {
    iconst 0
    istore 0
Lloop:
    iload 0
    iconst 500
    if_icmpge Ldone
    iload 0
    iconst 2
    irem
    iload 0
    invokestatic Test.fun
    pop
    iinc 0 1
    goto Lloop
Ldone:
    return
}
entry Test.main
`

func main() {
	prog := bytecode.MustAssemble(src)

	// Online phase: run on the simulated JVM with the PT collector
	// attached. This produces per-core packet traces plus the
	// machine-code metadata snapshot (template ranges, JIT debug info).
	run, err := jportal.Run(prog, nil, jportal.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d bytecodes (%d interpreted, %d compiled)\n",
		run.Stats.ExecutedBytecodes, run.Stats.InterpBytecodes, run.Stats.JITBytecodes)
	fmt.Printf("PT generated %d bytes of trace across %d cores\n",
		run.GenBytes, len(run.Traces))

	// Offline phase: segregate by thread, decode packets against the
	// metadata, project onto the ICFG, recover loss holes.
	an, err := jportal.Analyze(prog, run, core.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	th := an.Threads[0]
	fmt.Printf("reconstructed %d control-flow steps in %d segment(s)\n",
		len(th.Steps), th.Decode.Segments)

	// Show the start of the reconstructed flow the way Figure 2(f) does.
	fmt.Println("first steps of the reconstructed flow:")
	for i, s := range th.Steps {
		if i >= 12 {
			break
		}
		m := prog.Methods[s.Method]
		fmt.Printf("  %s@%d: %s\n", m.FullName(), s.PC, m.Code[s.PC].String())
	}
}
