package jportal

import (
	"fmt"
	"sort"
	"strings"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/metrics"
	"jportal/internal/vm"
)

// ChaosRow is one point of the coverage-vs-fault-rate curve: the subject
// analysed under base matrix × Rate.
type ChaosRow struct {
	// Rate is the multiplier applied to the base matrix.
	Rate float64
	// Matrix is the scaled matrix actually injected.
	Matrix fault.Matrix
	// Steps and RecoveredSteps summarise the surviving profile.
	Steps          int
	RecoveredSteps int
	// Coverage is the bytecode coverage of the surviving profile.
	Coverage float64
	// Report is the run's full degradation report, with the injector's
	// per-class counts folded in.
	Report *fault.DegradationReport
}

// ChaosTable runs one subject once, then analyses it repeatedly under the
// base fault matrix scaled by each rate, quantifying graceful degradation:
// how coverage decays as the input gets more hostile. Rate 0 is the clean
// baseline (the injector passes everything through untouched). The whole
// table is deterministic for a fixed base matrix: faults are seeded, and
// the analysis pipeline is deterministic for any worker count.
func ChaosTable(prog *bytecode.Program, threads []vm.ThreadSpec, rcfg RunConfig,
	pcfg core.PipelineConfig, base fault.Matrix, rates []float64) ([]ChaosRow, error) {

	rcfg.CollectOracle = false
	run, err := Run(prog, threads, rcfg)
	if err != nil {
		return nil, err
	}
	rows := make([]ChaosRow, 0, len(rates))
	for _, rate := range rates {
		m := base.Scale(rate)
		an, inj, err := analyzeFaulted(prog, run, pcfg, m)
		if err != nil {
			return nil, err
		}
		rep := an.Report
		rep.Injected = inj.Counts()
		row := ChaosRow{Rate: rate, Matrix: m, Coverage: rep.Coverage, Report: rep}
		for _, t := range an.Threads {
			row.Steps += len(t.Steps)
			row.RecoveredSteps += t.RecoveredSteps
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// analyzeFaulted is Analyze with the fault injector interposed between the
// run's outputs and the session: traces, sideband and the metadata snapshot
// all pass through it.
func analyzeFaulted(prog *bytecode.Program, run *RunResult, pcfg core.PipelineConfig,
	m fault.Matrix) (*Analysis, *fault.Injector, error) {

	src, err := run.Source()
	if err != nil {
		return nil, nil, err
	}
	if pcfg.Source == nil {
		pcfg.Source = src
	}
	// The injector corrupts through the source's traits hooks, so chaos
	// runs exercise whichever backend collected the trace.
	inj := fault.NewInjector(m, src.Traits(), metrics.Default)
	ncores := 1
	for i := range run.Traces {
		if n := run.Traces[i].Core + 1; n > ncores {
			ncores = n
		}
	}
	s, err := OpenSession(prog, inj.Snapshot(run.Snapshot), ncores, pcfg)
	if err != nil {
		return nil, nil, err
	}
	s.AddSideband(inj.Sideband(run.Sideband))
	for i := range run.Traces {
		if err := s.Feed(run.Traces[i].Core, inj.Items(run.Traces[i].Core, run.Traces[i].Items)); err != nil {
			return nil, nil, err
		}
	}
	an, err := s.Close()
	if err != nil {
		return nil, nil, err
	}
	return an, inj, nil
}

// FormatChaosTable renders rows as the fixed-width table `jportal chaos`
// prints, followed by the per-rate fault-class breakdowns. Deterministic
// for deterministic rows.
func FormatChaosTable(subject string, seed uint64, rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== chaos: %s (seed %d) ===\n", subject, seed)
	fmt.Fprintf(&b, "%-6s %-9s %-10s %-10s %-12s %-12s %s\n",
		"rate", "coverage", "steps", "recovered", "quarantined", "q-bytes", "seg(dec/quar)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %-9.4f %-10d %-10d %-12d %-12d %d/%d\n",
			r.Rate, r.Coverage, r.Steps, r.RecoveredSteps,
			r.Report.QuarantinedItems, r.Report.QuarantinedBytes,
			r.Report.SegmentsDecoded, r.Report.SegmentsQuarantined)
	}
	for _, r := range rows {
		if len(r.Report.Injected) == 0 && len(r.Report.Quarantined) == 0 {
			continue
		}
		fmt.Fprintf(&b, "rate %.2f faults:\n", r.Rate)
		writePairs(&b, "  injected   ", r.Report.Injected)
		writePairs(&b, "  quarantine ", r.Report.Quarantined)
	}
	return b.String()
}

func writePairs(b *strings.Builder, prefix string, m map[string]uint64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s%-18s %d\n", prefix, k, m[k])
	}
}
