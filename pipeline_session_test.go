package jportal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/meta"
	"jportal/internal/workload"
)

// forceTwoProcs lifts GOMAXPROCS to 2 for the duration of the test, so
// the ring-connected stages actually run on single-CPU CI machines:
// PipelineConfig.EffectivePipelined falls back to the synchronous session
// below two procs, and these tests exist precisely to exercise the rings.
func forceTwoProcs(t *testing.T) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(2)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// TestPipelinedMatchesBatchAllSubjects is the golden equivalence check of
// the ring handoff (DESIGN.md §12): for every benchmark subject, the
// pipelined Session — SPSC rings between caller, stitcher and sharded
// analyzer workers — must reproduce the batch Analyze byte-for-byte at
// every worker count and ring size, including the degenerate capacity-1
// ring that forces a handoff stall on every message.
func TestPipelinedMatchesBatchAllSubjects(t *testing.T) {
	forceTwoProcs(t)
	variants := []struct {
		workers int
		ring    int
		chunk   int
	}{
		{1, 1, 7},
		{3, 7, 64},
		{8, 1024, 256},
	}
	for _, name := range workload.Names() {
		s := workload.MustLoad(name, 0.25)
		rcfg := DefaultRunConfig()
		rcfg.CollectOracle = false
		rcfg.PT.BufBytes = 16 << 10
		run, err := Run(s.Program, s.Threads, rcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		batch, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, v := range variants {
			cfg := core.DefaultPipelineConfig()
			cfg.Pipelined = true
			cfg.Workers = v.workers
			cfg.RingSize = v.ring
			got := sessionAnalyze(t, s, run, cfg, v.chunk)
			equalAnalyses(t, fmt.Sprintf("%s/w%d-ring%d", name, v.workers, v.ring), batch, got)
		}
	}
}

// TestPipelinedLiveMatchesBatch runs the fully live path — collector sink
// feeding a pipelined Session while the VM is still compiling methods —
// and checks it against a batch run. This covers the per-worker snapshot
// replicas: blobs travel in-band through the rings, so every worker sees
// a dump before the first chunk that references it (§3.2 ordering).
func TestPipelinedLiveMatchesBatch(t *testing.T) {
	forceTwoProcs(t)
	s := workload.MustLoad("h2", 0.5)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 128

	run, err := Run(s.Program, s.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range []struct{ workers, ring int }{{2, 1}, {4, 64}} {
		s2 := workload.MustLoad("h2", 0.5)
		pcfg := core.DefaultPipelineConfig()
		pcfg.Pipelined = true
		pcfg.Workers = v.workers
		pcfg.RingSize = v.ring
		_, streamed, err := AnalyzeStreamed(s2.Program, s2.Threads, rcfg, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		equalAnalyses(t, fmt.Sprintf("live/w%d-ring%d", v.workers, v.ring), batch, streamed)
	}
}

// collectArchive runs the subject once with the archive writer wrapped in
// an AsyncSink of the given ring capacity (0 = write synchronously) and
// returns the raw bytes of the sealed stream.jpt.
func collectArchive(t *testing.T, ringSize int) []byte {
	t.Helper()
	forceTwoProcs(t)
	s := workload.MustLoad("fop", 0.25)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 64

	dir := filepath.Join(t.TempDir(), "chunked")
	var w *StreamArchiveWriter
	var async *AsyncSink
	_, err := RunWithSink(s.Program, s.Threads, rcfg,
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error) {
			var err error
			w, err = CreateStreamArchive(dir, p, snap, ncores)
			if err != nil || ringSize == 0 {
				return w, err
			}
			async = NewAsyncSink(w, ringSize)
			return async, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if async != nil {
		if err := async.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}

	// The archive must also still analyse — and with a pipelined replay
	// session it must match the batch materialisation of the same records.
	prog2, run2, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Analyze(prog2, run2, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Pipelined = true
	pcfg.Workers = 3
	_, replayed, err := AnalyzeStreamArchive(dir, pcfg, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	equalAnalyses(t, fmt.Sprintf("replay ring%d", ringSize), batch, replayed)

	raw, err := os.ReadFile(filepath.Join(dir, "stream.jpt"))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestAsyncSinkArchiveBytesIdentical is the determinism check for the
// asynchronous handoff: the archive bytes a run produces must not depend
// on whether a ring sits between the collector and the writer, nor on the
// ring's capacity — {1, 7, 1024} all yield the same stream.jpt as the
// synchronous writer, byte for byte.
func TestAsyncSinkArchiveBytesIdentical(t *testing.T) {
	want := collectArchive(t, 0)
	if len(want) == 0 {
		t.Fatal("synchronous archive is empty")
	}
	for _, ring := range []int{1, 7, 1024} {
		got := collectArchive(t, ring)
		if !bytes.Equal(want, got) {
			t.Errorf("ring %d: stream.jpt differs from synchronous write (%d vs %d bytes)",
				ring, len(got), len(want))
		}
	}
}
