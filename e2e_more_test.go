package jportal

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/metrics"
	"jportal/internal/profile"
	"jportal/internal/vm"
	"jportal/internal/workload"
)

func similarity(an *Analysis, o *Oracle, tid int) float64 {
	var got []metrics.Key
	for _, s := range an.Threads[tid].Steps {
		got = append(got, metrics.StepKey(int32(s.Method), s.PC))
	}
	return metrics.Similarity(got, o.Keys(tid), 4096)
}

func TestEndToEndMultithreaded(t *testing.T) {
	s := workload.MustLoad("lusearch", 0.5)
	cfg := DefaultRunConfig()
	run, err := Run(s.Program, s.Threads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Threads) != len(s.Threads) {
		t.Fatalf("threads: %d", len(an.Threads))
	}
	for tid := range an.Threads {
		sim := similarity(an, run.Oracle, tid)
		t.Logf("thread %d: steps=%d truth=%d sim=%.3f",
			tid, len(an.Threads[tid].Steps), run.Oracle.Len(tid), sim)
		if sim < 0.5 {
			t.Errorf("thread %d similarity %.3f too low", tid, sim)
		}
	}
}

func TestEndToEndWithLossAndRecovery(t *testing.T) {
	s := workload.MustLoad("h2", 1.0)
	cfg := DefaultRunConfig()
	cfg.PT.BufBytes = 16 << 10 // small buffers force loss
	run, err := Run(s.Program, s.Threads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lost uint64
	for _, tr := range run.Traces {
		lost += tr.LostBytes()
	}
	if lost == 0 {
		t.Skip("no loss at this configuration; loss-specific assertions skipped")
	}
	an, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	totalSegments, recovered := 0, 0
	for _, th := range an.Threads {
		totalSegments += len(th.Flows)
		recovered += th.RecoveredSteps
	}
	if totalSegments <= len(an.Threads) {
		t.Error("loss should create segmentation")
	}
	if recovered == 0 {
		t.Error("recovery produced nothing despite loss")
	}
}

func TestRecoveryAblationImprovesAccuracy(t *testing.T) {
	s := workload.MustLoad("batik", 1.0)
	cfg := DefaultRunConfig()
	cfg.PT.BufBytes = 16 << 10
	run, err := Run(s.Program, s.Threads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lost uint64
	for _, tr := range run.Traces {
		lost += tr.LostBytes()
	}
	if lost == 0 {
		t.Skip("no loss; ablation not meaningful")
	}
	with, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	pcfgOff := core.DefaultPipelineConfig()
	pcfgOff.Recovery.Disable = true
	without, err := Analyze(s.Program, run, pcfgOff)
	if err != nil {
		t.Fatal(err)
	}
	simWith := similarity(with, run.Oracle, 0)
	simWithout := similarity(without, run.Oracle, 0)
	t.Logf("with recovery %.3f, without %.3f", simWith, simWithout)
	if simWith < simWithout {
		t.Errorf("recovery reduced accuracy: %.3f < %.3f", simWith, simWithout)
	}
}

func TestPublicProfilesFromAnalysis(t *testing.T) {
	s := workload.MustLoad("jython", 0.3)
	run, err := Run(s.Program, s.Threads, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(s.Program, run, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	steps := an.Steps()
	if len(steps) == 0 {
		t.Fatal("no steps")
	}

	cov := profile.ComputeCoverage(s.Program, steps)
	if cov.Ratio() <= 0 || cov.Ratio() > 1 {
		t.Errorf("coverage ratio %f", cov.Ratio())
	}
	hot := profile.HotMethods(s.Program, steps, 10)
	if len(hot) == 0 {
		t.Error("no hot methods")
	}
	edges := profile.EdgeProfile(s.Program, steps)
	if len(edges) == 0 {
		t.Error("no edges")
	}
	tree := profile.CallTree(s.Program, steps)
	if tree.TotalCalls() == 0 {
		t.Error("empty call tree")
	}
	pp := profile.ComputePathProfile(s.Program, steps)
	if len(pp.Counts) == 0 {
		t.Error("no path counts")
	}
}

func TestAnalyzeRequiresTraces(t *testing.T) {
	s := workload.MustLoad("fop", 0.1)
	cfg := DefaultRunConfig()
	cfg.DisableTracing = true
	run, err := Run(s.Program, s.Threads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(s.Program, run, core.DefaultPipelineConfig()); err == nil {
		t.Fatal("Analyze accepted a run without traces")
	}
}

func TestRunVerifiesProgram(t *testing.T) {
	// A structurally broken program must be rejected before execution.
	p := &bytecode.Program{}
	b := bytecode.NewBuilder("T", "bad", 0)
	b.Iconst(1) // falls off the end
	m, _ := b.Build()
	p.AddMethod(m)
	p.Entry = m.ID
	if _, err := Run(p, nil, DefaultRunConfig()); err == nil {
		t.Fatal("broken program accepted")
	}
}

func TestOracleAccessors(t *testing.T) {
	s := workload.MustLoad("luindex", 0.1)
	run, err := Run(s.Program, s.Threads, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := run.Oracle
	if o.NumThreads() != 1 || o.Len(0) == 0 {
		t.Fatal("oracle empty")
	}
	if len(o.Keys(0)) != o.Len(0) || len(o.TimedKeys(0)) != o.Len(0) {
		t.Error("accessor lengths disagree")
	}
	counts := o.MethodCounts(len(s.Program.Methods))
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(o.Len(0)) {
		t.Errorf("method counts sum %d != events %d", total, o.Len(0))
	}
	tks := o.TimedKeys(0)
	for i := 1; i < len(tks); i++ {
		if tks[i].TSC < tks[i-1].TSC {
			t.Fatal("oracle timestamps regress within a thread")
		}
	}
}

func TestThreadSpecsWithArgs(t *testing.T) {
	src := `
method T.add(2) returns int {
    iload 0
    iload 1
    iadd
    ireturn
}
method T.main(0) {
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	run, err := Run(p, []vm.ThreadSpec{
		{Method: p.MethodByName("T.add").ID, Args: []int32{3, 4}},
		{Method: p.MethodByName("T.add").ID, Args: []int32{10, -4}},
	}, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if run.Stats.ThreadResults[0] != 7 || run.Stats.ThreadResults[1] != 6 {
		t.Errorf("results: %v", run.Stats.ThreadResults)
	}
}

func TestEndToEndWithPDAEngine(t *testing.T) {
	// The full pipeline with the context-sensitive (PDA) matcher engaged
	// must work end to end and not lose accuracy relative to the NFA on
	// a real subject.
	s := workload.MustLoad("batik", 0.3)
	run, err := Run(s.Program, s.Threads, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	score := func(useCtx bool) float64 {
		pcfg := core.DefaultPipelineConfig()
		pcfg.UseCallContext = useCtx
		an, err := Analyze(s.Program, run, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		return similarity(an, run.Oracle, 0)
	}
	nfa, pda := score(false), score(true)
	t.Logf("NFA=%.3f PDA=%.3f", nfa, pda)
	if pda+0.02 < nfa {
		t.Errorf("PDA pipeline notably worse: %.3f vs %.3f", pda, nfa)
	}
}
